// Package scenariogen is the adversarial scenario generator and
// differential verification harness for the event-driven scenario core.
//
// The generator emits random-but-valid scenario.Specs from a seed: fleet
// sizes from one craft to hundreds, random route and loop topologies
// around hub layouts, Poisson-ish traffic and transfer mixes, and chaos
// scripts that kill and degrade vehicles at deliberately adversarial
// instants — exactly on control-tick boundaries, in the middle of elided
// settled stretches, and at predicted waypoint arrivals. Every Spec it
// produces passes Spec.Validate and survives a byte-exact encode/decode
// round trip, so the generator doubles as a fuzzer for the Spec layer and
// as a factory for the committed corpus under testdata/corpus.
//
// The harness (Verify) runs a Spec through two oracles — the event-driven
// Runtime and the retained lockstep reference path — and through
// metamorphic transforms (chaos-line permutation, duration extension past
// quiescence), failing with a Divergence that Minimize can shrink to a
// small counterexample Spec.
package scenariogen

import (
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// Params bounds the generator's output. The zero value of any field
// selects the default.
type Params struct {
	// MaxVehicles caps the fleet size (default 500). The draw is
	// heavy-tailed: most scenarios are small, a few are large.
	MaxVehicles int
	// MaxRouteWaypoints caps a route chain's length (default 6).
	MaxRouteWaypoints int
	// MaxTraffic and MaxTransfers cap the workload mixes (defaults 2, 3).
	// Workloads are only generated for small fleets: saturation traffic
	// over a 400-craft fleet measures the radio, not the fleet.
	MaxTraffic   int
	MaxTransfers int
	// MaxChaosLines caps the fault script (default 12).
	MaxChaosLines int
	// MaxDurationS caps the scenario fly-out (default 40 s; large fleets
	// are scaled down further to keep a corpus run affordable).
	MaxDurationS float64
	// WorldM is the coordinate extent vehicles are placed in (default
	// 1500 m).
	WorldM float64
	// TableDecisionProb is the probability a transfer decision uses the
	// "table" engine instead of "exact" (default 0.04 — table decisions
	// lazily build a policy table, which dominates a small scenario's
	// cost).
	TableDecisionProb float64
}

// DefaultParams returns the corpus-generation defaults.
func DefaultParams() Params {
	return Params{
		MaxVehicles:       500,
		MaxRouteWaypoints: 6,
		MaxTraffic:        2,
		MaxTransfers:      3,
		MaxChaosLines:     12,
		MaxDurationS:      40,
		WorldM:            1500,
		TableDecisionProb: 0.04,
	}
}

// Generator produces Specs deterministically from seeds.
type Generator struct{ p Params }

// New builds a Generator, filling zero Params fields from DefaultParams.
func New(p Params) *Generator {
	d := DefaultParams()
	if p.MaxVehicles <= 0 {
		p.MaxVehicles = d.MaxVehicles
	}
	if p.MaxRouteWaypoints <= 0 {
		p.MaxRouteWaypoints = d.MaxRouteWaypoints
	}
	if p.MaxTraffic <= 0 {
		p.MaxTraffic = d.MaxTraffic
	}
	if p.MaxTransfers <= 0 {
		p.MaxTransfers = d.MaxTransfers
	}
	if p.MaxChaosLines <= 0 {
		p.MaxChaosLines = d.MaxChaosLines
	}
	if p.MaxDurationS <= 0 {
		p.MaxDurationS = d.MaxDurationS
	}
	if p.WorldM <= 0 {
		p.WorldM = d.WorldM
	}
	if p.TableDecisionProb <= 0 {
		p.TableDecisionProb = d.TableDecisionProb
	}
	return &Generator{p: p}
}

// Generate is shorthand for New(DefaultParams()).Spec(seed).
func Generate(seed int64) scenario.Spec { return New(Params{}).Spec(seed) }

// Spec generates one random-but-valid scenario deterministically from the
// seed: same seed, same Params, byte-identical Spec.
func (g *Generator) Spec(seed int64) scenario.Spec {
	rng := stats.NewRNG(seed).Substream(seed, "scenariogen/spec")
	n := g.fleetSize(rng)

	s := scenario.Spec{
		Name: fmt.Sprintf("gen-s%d-n%d", seed, n),
		Seed: seed,
	}

	// Hub layout: vehicles cluster around 1–4 hubs with per-craft jitter;
	// a minority of crafts are scattered uniformly instead.
	hubs := g.hubLayout(rng)
	speeds := make([]float64, n)
	for i := 0; i < n; i++ {
		vs, speed := g.vehicle(rng, i, hubs)
		speeds[i] = speed
		s.Vehicles = append(s.Vehicles, vs)
	}

	// Duration: large fleets get short fly-outs so a corpus entry stays
	// affordable even on the lockstep reference path.
	maxDur := g.p.MaxDurationS
	if n > 100 {
		maxDur = math.Min(maxDur, 15)
	}
	s.DurationS = round2(rng.Uniform(4, maxDur))

	// Link variation: fixed MCS sometimes, auto-rate otherwise.
	if rng.Bernoulli(0.25) {
		s.Link.Rate = fmt.Sprintf("mcs%d", rng.Intn(8))
	}

	g.traffic(rng, &s)
	g.transfers(rng, &s)
	g.chaos(rng, &s, speeds)
	return s
}

// fleetSize draws a heavy-tailed fleet size in [1, MaxVehicles]: mostly
// small fleets (where workloads reach every subsystem), a thick band of
// medium ones, and a rare tail of hundreds of crafts. Each band clamps to
// MaxVehicles so tightened Params never leave an empty draw range.
func (g *Generator) fleetSize(rng *stats.RNG) int {
	max := g.p.MaxVehicles
	switch x := rng.Float64(); {
	case x < 0.60 || max <= 8: // small
		return 1 + rng.Intn(minInt(8, max))
	case x < 0.85 || max <= 40: // medium
		return 9 + rng.Intn(minInt(32, max-8))
	case x < 0.97 || max <= 160: // large
		return 41 + rng.Intn(minInt(120, max-40))
	default: // very large
		return 161 + rng.Intn(max-160)
	}
}

func (g *Generator) hubLayout(rng *stats.RNG) []geo.Vec3 {
	hubs := make([]geo.Vec3, 1+rng.Intn(4))
	for i := range hubs {
		hubs[i] = geo.Vec3{
			X: round2(rng.Uniform(0, g.p.WorldM)),
			Y: round2(rng.Uniform(0, g.p.WorldM)),
			Z: round2(rng.Uniform(15, 120)),
		}
	}
	return hubs
}

// vehicle generates one VehicleSpec and returns it with the craft's
// effective speed estimate (for adversarial arrival-instant chaos).
func (g *Generator) vehicle(rng *stats.RNG, i int, hubs []geo.Vec3) (scenario.VehicleSpec, float64) {
	vs := scenario.VehicleSpec{ID: fmt.Sprintf("v%03d", i)}
	if rng.Bernoulli(0.75) {
		vs.Platform = scenario.PlatformQuad
	} else {
		vs.Platform = scenario.PlatformPlane
	}
	hub := hubs[rng.Intn(len(hubs))]
	if rng.Bernoulli(0.2) { // scattered, not hubbed
		hub = geo.Vec3{X: rng.Uniform(0, g.p.WorldM), Y: rng.Uniform(0, g.p.WorldM), Z: rng.Uniform(15, 120)}
	}
	vs.Start = geo.Vec3{
		X: round2(hub.X + rng.Normal(0, 60)),
		Y: round2(hub.Y + rng.Normal(0, 60)),
		Z: round2(math.Max(5, hub.Z+rng.Normal(0, 10))),
	}

	speed := 10.0
	switch x := rng.Float64(); {
	case x < 0.40: // holder (settled once arrived — the elision target)
		vs.Hold = true
	case x < 0.55: // idle: no route, no hold
	default: // route flyer
		legs := 2 + rng.Intn(g.p.MaxRouteWaypoints-1)
		at := vs.Start
		for j := 0; j < legs; j++ {
			at = geo.Vec3{
				X: round2(at.X + rng.Uniform(-400, 400)),
				Y: round2(at.Y + rng.Uniform(-400, 400)),
				Z: round2(math.Max(5, at.Z+rng.Uniform(-15, 15))),
			}
			vs.Route = append(vs.Route, at)
		}
		if rng.Bernoulli(0.5) {
			vs.SpeedMPS = round2(rng.Uniform(4, 18))
			speed = vs.SpeedMPS
		}
		if rng.Bernoulli(0.3) {
			vs.Loop = true
			vs.LoopFrom = rng.Intn(len(vs.Route))
		}
	}
	return vs, speed
}

// traffic adds saturation workloads with Poisson-ish start times — only
// for small fleets, where measuring the radio is the point.
func (g *Generator) traffic(rng *stats.RNG, s *scenario.Spec) {
	if len(s.Vehicles) < 2 || len(s.Vehicles) > 12 || !rng.Bernoulli(0.5) {
		return
	}
	at := 0.0
	count := rng.Intn(g.p.MaxTraffic) + 1
	for i := 0; i < count; i++ {
		at += rng.Exponential(1.0 / 3.0)
		if at > s.DurationS*0.8 {
			break
		}
		from, to := g.pair(rng, len(s.Vehicles))
		s.Traffic = append(s.Traffic, scenario.TrafficSpec{
			From:      s.Vehicles[from].ID,
			To:        s.Vehicles[to].ID,
			StartS:    round2(at),
			DurationS: round2(rng.Uniform(1.5, 6)),
			WindowS:   round2(rng.Uniform(0.5, 2)),
		})
	}
}

// transfers adds batch deliveries — decisions, failover receivers and
// arrival-gated starts included — for small-to-medium fleets.
func (g *Generator) transfers(rng *stats.RNG, s *scenario.Spec) {
	if len(s.Vehicles) < 2 || len(s.Vehicles) > 25 || !rng.Bernoulli(0.6) {
		return
	}
	at := 0.0
	count := rng.Intn(g.p.MaxTransfers) + 1
	for i := 0; i < count; i++ {
		at += rng.Exponential(1.0 / 5.0)
		if at > s.DurationS {
			break
		}
		from, to := g.pair(rng, len(s.Vehicles))
		ts := scenario.TransferSpec{
			From:      s.Vehicles[from].ID,
			To:        s.Vehicles[to].ID,
			SizeMB:    round2(rng.Uniform(0.1, 1.2)),
			DeadlineS: round2(rng.Uniform(15, 60)),
			StartS:    round2(at),
			Reliable:  rng.Bernoulli(0.5),
		}
		// Arrival-gated start only when the sender's route completes.
		if len(s.Vehicles[from].Route) > 0 && !s.Vehicles[from].Loop && rng.Bernoulli(0.3) {
			ts.StartOnArrival = true
		}
		if len(s.Vehicles) >= 3 && rng.Bernoulli(0.25) {
			alt := rng.Intn(len(s.Vehicles))
			if alt != from {
				ts.AltTo = s.Vehicles[alt].ID
			}
		}
		if rng.Bernoulli(0.45) {
			d := &scenario.DecisionSpec{Kind: "exact"}
			if rng.Bernoulli(g.p.TableDecisionProb) {
				d.Kind = "table"
			}
			if rng.Bernoulli(0.5) {
				d.RhoPerM = round6(rng.Uniform(1e-4, 3e-3))
			}
			ts.Decision = d
		}
		s.Transfers = append(s.Transfers, ts)
	}
}

// chaos writes the fault script. Kill instants are chosen adversarially
// against the event-driven core: exactly on accumulated control-tick
// boundaries, mid-way through a settled craft's elided stretch, and at a
// route flyer's predicted first-waypoint arrival. Windowed faults are
// allocated from a single non-overlapping cursor per fault class, so the
// script always passes chaos.Schedule validation.
func (g *Generator) chaos(rng *stats.RNG, s *scenario.Spec, speeds []float64) {
	if !rng.Bernoulli(0.7) {
		return
	}
	var lines []string
	if rng.Bernoulli(0.3) {
		lines = append(lines, fmt.Sprintf("seed %d", rng.Intn(1_000_000)+1))
	}

	// Scripted deaths: a few per fleet, at adversarial instants.
	kills := rng.Intn(minInt(len(s.Vehicles), 4) + 1)
	killed := map[int]bool{}
	for k := 0; k < kills && len(lines) < g.p.MaxChaosLines; k++ {
		vi := rng.Intn(len(s.Vehicles))
		if killed[vi] {
			continue
		}
		killed[vi] = true
		v := s.Vehicles[vi]
		var at float64
		switch x := rng.Float64(); {
		case x < 0.35:
			// Exactly on an accumulated tick boundary: the frontier grid
			// accumulates ControlTickS additions, so build the instant the
			// same way instead of multiplying. %g keeps the shortest exact
			// decimal, so the parsed kill time lands bit-for-bit on the
			// frontier the Runtime will visit.
			ticks := rng.Intn(int(s.DurationS/scenario.ControlTickS) + 1)
			for t := 0; t < ticks; t++ {
				at += scenario.ControlTickS
			}
		case x < 0.65 && len(v.Route) > 0:
			// At the predicted first-waypoint arrival (± half a second):
			// races the arrival-check event and the leg hook.
			eta := v.Start.Dist(v.Route[0]) / speeds[vi]
			at = round3(math.Max(0, eta+rng.Uniform(-0.5, 0.5)))
		default:
			// Deep inside the fly-out, where holders sit settled and
			// elided: the kill must force an exact mid-stretch replay.
			at = round3(s.DurationS * rng.Uniform(0.5, 0.95))
		}
		lines = append(lines, fmt.Sprintf("vehicle fail %s %g", v.ID, at))
	}

	// Windowed faults: per class, a cursor hands out disjoint windows, so
	// any mix of targets (wildcard included) validates.
	windowed := func(format func(id string, start, end float64) string) {
		cursor := 0.0
		count := rng.Intn(3)
		for i := 0; i < count && len(lines) < g.p.MaxChaosLines; i++ {
			start := round3(cursor + rng.Uniform(0.1, 3))
			end := round3(start + rng.Uniform(0.5, 5))
			cursor = end
			if start >= s.DurationS {
				break
			}
			id := s.Vehicles[rng.Intn(len(s.Vehicles))].ID
			if rng.Bernoulli(0.15) {
				id = "*"
			}
			lines = append(lines, format(id, start, end))
		}
	}
	windowed(func(id string, a, b float64) string {
		return fmt.Sprintf("link outage %s %g %g", id, a, b)
	})
	windowed(func(id string, a, b float64) string {
		return fmt.Sprintf("link fade %s %g %g %g", id, round2(rng.Uniform(3, 25)), a, b)
	})
	windowed(func(id string, a, b float64) string {
		return fmt.Sprintf("gps outage %s %g %g", id, a, b)
	})
	if rng.Bernoulli(0.25) && len(lines) < g.p.MaxChaosLines {
		start := round3(rng.Uniform(0, s.DurationS/2))
		lines = append(lines, fmt.Sprintf("telemetry loss %g %g %g",
			round2(rng.Uniform(0.05, 0.9)), start, round3(start+rng.Uniform(1, 8))))
	}
	s.Chaos = lines
}

// pair draws two distinct vehicle indices.
func (g *Generator) pair(rng *stats.RNG, n int) (int, int) {
	from := rng.Intn(n)
	to := rng.Intn(n - 1)
	if to >= from {
		to++
	}
	return from, to
}

// round2/round3/round6 quantize generated values so the emitted Specs and
// chaos lines stay human-readable; the quantized floats round-trip exactly
// through JSON and the chaos text format.
func round2(x float64) float64 { return math.Round(x*100) / 100 }
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
