package scenariogen

import (
	"fmt"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/stats"
)

// GenerateRequests emits a request-workload Spec deterministically from the
// seed: one holding collector, a small serving fleet, and a seeded Poisson
// arrival process of (origin, size, deadline) pickup demands, with the
// planner drawn across all three arms (fixed, greedy, joint). The draws run
// on a fresh substream ("scenariogen/requests"), so adding this generator
// never perturbs what Generate emits for the same seed — the pinned route
// corpus is untouched.
//
// Like Generate, every Spec it produces passes Spec.Validate, survives the
// canonical encode/decode round trip, and clears the full differential
// harness (Verify), so the request corpus entries replay on both the
// event-driven and lockstep paths.
func GenerateRequests(seed int64) scenario.Spec {
	rng := stats.NewRNG(seed).Substream(seed, "scenariogen/requests")

	// The planner arm cycles with the seed (not an rng draw) so any three
	// consecutive seeds — the corpus prefix in particular — cover all three
	// arms.
	planner := []string{
		scenario.PlannerFixed, scenario.PlannerGreedy, scenario.PlannerJoint,
	}[((seed%3)+3)%3]

	s := scenario.Spec{
		Name: fmt.Sprintf("genreq-s%d-%s", seed, planner),
		Seed: seed,
	}

	// The collector holds station near the middle of the request area; the
	// servers start scattered around it.
	col := geo.Vec3{
		X: round2(rng.Uniform(200, 600)),
		Y: round2(rng.Uniform(200, 600)),
		Z: round2(rng.Uniform(20, 60)),
	}
	s.Vehicles = append(s.Vehicles, scenario.VehicleSpec{
		ID: "col", Platform: scenario.PlatformQuad, Start: col, Hold: true,
	})
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		vs := scenario.VehicleSpec{
			ID:       fmt.Sprintf("srv%02d", i),
			Platform: scenario.PlatformQuad,
			Start: geo.Vec3{
				X: round2(col.X + rng.Normal(0, 120)),
				Y: round2(col.Y + rng.Normal(0, 120)),
				Z: round2(clampF(col.Z+rng.Normal(0, 8), 5, 100)),
			},
		}
		if rng.Bernoulli(0.5) {
			vs.SpeedMPS = round2(rng.Uniform(6, 14))
		}
		s.Vehicles = append(s.Vehicles, vs)
	}

	rs := &scenario.RequestsSpec{Collector: "col", Planner: planner}
	if planner == scenario.PlannerJoint {
		if rng.Bernoulli(0.6) {
			rs.HorizonS = round2(rng.Uniform(60, 240))
		}
		if rng.Bernoulli(0.5) {
			rs.ReplanTicks = 25 + rng.Intn(75)
		}
	}
	if rng.Bernoulli(0.25) {
		rs.EnergyBudgetS = round2(rng.Uniform(400, 1200))
	}
	if rng.Bernoulli(0.3) {
		d := &scenario.DecisionSpec{Kind: "exact"}
		if rng.Bernoulli(0.5) {
			d.RhoPerM = round6(rng.Uniform(1e-4, 2e-3))
		}
		rs.Decision = d
	}

	// Banded Poisson rates — sparse, steady and bursty arrival regimes —
	// crossed with tight and loose deadline mixes.
	var rate float64
	switch rng.Intn(3) {
	case 0: // sparse
		rate = round6(rng.Uniform(1.0/45, 1.0/25))
	case 1: // steady
		rate = round6(rng.Uniform(1.0/20, 1.0/10))
	default: // bursty
		rate = round6(rng.Uniform(1.0/8, 1.0/4))
	}
	minLead := round2(rng.Uniform(60, 120))
	if rng.Bernoulli(0.4) { // tight-deadline mix
		minLead = round2(rng.Uniform(30, 60))
	}
	p := &scenario.PoissonSpec{
		RatePerS:  rate,
		Count:     3 + rng.Intn(5),
		MinSizeMB: round2(rng.Uniform(0.4, 1.0)),
		MinLeadS:  minLead,
		MaxLeadS:  round2(minLead + rng.Uniform(60, 240)),
		AreaM:     round2(rng.Uniform(300, 800)),
		AltM:      round2(rng.Uniform(20, 45)),
	}
	p.MaxSizeMB = round2(p.MinSizeMB + rng.Uniform(0.5, 3))
	if rng.Bernoulli(0.3) {
		p.Seed = int64(rng.Intn(1_000_000) + 1)
	}
	rs.Poisson = p

	// A minority of scenarios add explicit early requests alongside the
	// Poisson stream, so both request sources mix in one run.
	if rng.Bernoulli(0.35) {
		count := 1 + rng.Intn(2)
		for i := 0; i < count; i++ {
			arrival := round2(rng.Uniform(0, 20))
			rs.Requests = append(rs.Requests, scenario.RequestSpec{
				ID: fmt.Sprintf("r%d", i+1),
				Origin: geo.Vec3{
					X: round2(rng.Uniform(0, p.AreaM)),
					Y: round2(rng.Uniform(0, p.AreaM)),
					Z: p.AltM,
				},
				SizeMB:    round2(rng.Uniform(0.5, 3)),
				ArrivalS:  arrival,
				DeadlineS: round2(arrival + rng.Uniform(100, 300)),
			})
		}
	}
	s.Requests = rs

	// Chaos: occasionally kill a server mid-service (the dispatcher must
	// requeue its request), rarely the collector (everything pending must
	// expire, never hang).
	if rng.Bernoulli(0.3) {
		var lines []string
		if rng.Bernoulli(0.3) {
			lines = append(lines, fmt.Sprintf("seed %d", rng.Intn(1_000_000)+1))
		}
		victim := s.Vehicles[1+rng.Intn(n)].ID
		if rng.Bernoulli(0.15) {
			victim = "col"
		}
		lines = append(lines, fmt.Sprintf("vehicle fail %s %g", victim, round3(rng.Uniform(5, 60))))
		s.Chaos = lines
	}

	s.DurationS = round2(rng.Uniform(5, 25))
	return s
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
