package scenariogen

import (
	"reflect"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// FuzzGeneratedSpec: for ANY seed the generator must emit a valid,
// deterministic, canonically round-trippable Spec, and small fleets must
// compile. This is the CI smoke fuzzer (-fuzz=FuzzGeneratedSpec); the seed
// corpus pins the boundary seeds and the corpus generation range.
func FuzzGeneratedSpec(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 13, genSeeds - 1, 1 << 20, -1, -1 << 40, 1<<63 - 1, -1 << 63} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		if again := Generate(seed); !reflect.DeepEqual(again, s) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
		data, err := scenario.Encode(s)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := scenario.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: own encoding rejected: %v", seed, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("seed %d: round trip changed the spec", seed)
		}
		// Compiling is the expensive half; bound it to small fleets so the
		// fuzzer spends its time on variety, not on one 500-craft build.
		if len(s.Vehicles) <= 24 {
			if _, err := scenario.CompileWithOptions(s, scenario.Options{CheckInvariants: true}); err != nil {
				t.Fatalf("seed %d: valid spec failed to compile: %v", seed, err)
			}
		}
	})
}

// FuzzGeneratedRequestSpec: the same contract for the request-workload
// generator — any seed yields a valid, deterministic, round-trippable Spec
// whose requests section compiles (compilation materializes the Poisson
// stream, so this also fuzzes the arrival generator).
func FuzzGeneratedRequestSpec(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, RequestCorpusSeeds - 1, reqSeeds - 1, 1 << 20, -1, -1 << 40, 1<<63 - 1, -1 << 63} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := GenerateRequests(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		if again := GenerateRequests(seed); !reflect.DeepEqual(again, s) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
		data, err := scenario.Encode(s)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := scenario.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: own encoding rejected: %v", seed, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("seed %d: round trip changed the spec", seed)
		}
		if _, err := scenario.CompileWithOptions(s, scenario.Options{CheckInvariants: true}); err != nil {
			t.Fatalf("seed %d: valid spec failed to compile: %v", seed, err)
		}
	})
}
