package scenariogen

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

const corpusDir = "testdata/corpus"

// TestRegenerateCorpus rewrites testdata/corpus when REGEN_CORPUS=1 —
// the documented regeneration flow (EXPERIMENTS.md). It is a no-op test
// otherwise, so the corpus can only change deliberately.
func TestRegenerateCorpus(t *testing.T) {
	if os.Getenv("REGEN_CORPUS") != "1" {
		t.Skip("set REGEN_CORPUS=1 to rewrite the committed corpus")
	}
	if err := WriteCorpus(corpusDir); err != nil {
		t.Fatal(err)
	}
}

// The committed corpus is the CI matrix: every entry must load, match its
// pinned spec fingerprint, replay to its pinned result fingerprint with
// zero invariant violations, and — for generated entries — still be what
// the generator emits for its seed. Any engine change that shifts a single
// float shows up here as a named, reproducible entry.
func TestCorpusReplaysToPinnedFingerprints(t *testing.T) {
	entries, err := ReadManifest(corpusDir)
	if err != nil {
		t.Fatalf("missing corpus manifest (regenerate with REGEN_CORPUS=1): %v", err)
	}
	if len(entries) < 50 {
		t.Fatalf("corpus holds %d entries, want ≥ 50", len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.Load(filepath.Join(corpusDir, e.File))
			if err != nil {
				t.Fatal(err)
			}
			fp, err := scenario.Fingerprint(spec)
			if err != nil {
				t.Fatal(err)
			}
			if got := hex16(fp); got != e.SpecFingerprint {
				t.Fatalf("spec fingerprint %s != pinned %s", got, e.SpecFingerprint)
			}
			if e.Generated {
				gen := Generate
				if e.Kind == KindRequests {
					gen = GenerateRequests
				}
				genFP, err := scenario.Fingerprint(gen(e.Seed))
				if err != nil {
					t.Fatal(err)
				}
				if hex16(genFP) != e.SpecFingerprint {
					t.Fatalf("generator no longer reproduces seed %d (fingerprint %s != %s); "+
						"if the generator changed deliberately, regenerate the corpus",
						e.Seed, hex16(genFP), e.SpecFingerprint)
				}
			}
			rt, err := scenario.CompileWithOptions(spec, scenario.Options{CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			if v := rt.InvariantViolations(); len(v) != 0 {
				t.Fatalf("invariant violations: %v", v)
			}
			if got := hex16(scenario.ResultFingerprint(res)); got != e.ResultFingerprint {
				t.Fatalf("result fingerprint %s != pinned %s — engine behaviour changed; "+
					"audit the change, then regenerate the corpus", got, e.ResultFingerprint)
			}
		})
	}
}

// Every corpus entry must also clear the full differential harness — the
// lockstep oracle and the metamorphic transforms, not just fingerprint
// replay. Short mode spot-checks the regression entries plus a prefix.
func TestCorpusPassesDifferentialHarness(t *testing.T) {
	entries, err := ReadManifest(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	budget := len(entries)
	if testing.Short() {
		budget = 12
	}
	run := 0
	for _, e := range entries {
		if run >= budget && e.Generated {
			continue // regression entries always run
		}
		run++
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			spec, err := scenario.Load(filepath.Join(corpusDir, e.File))
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func hex16(fp uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[fp&0xf]
		fp >>= 4
	}
	return string(b[:])
}
