package scenariogen

import (
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// The headline property: every generated Spec must pass the full
// differential harness — lockstep oracle, chaos permutation, duration
// extension, invariants — with zero divergences. Short mode sweeps a
// prefix; CI sweeps the full corpus seed range.
func TestVerifyGeneratedSpecs(t *testing.T) {
	seeds := int64(genSeeds)
	if testing.Short() {
		seeds = 16
	}
	for seed := int64(0); seed < seeds; seed++ {
		if err := Verify(Generate(seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// permuteChaos must reorder fault lines without touching "seed" directives
// and must report when no reordering exists.
func TestPermuteChaos(t *testing.T) {
	s := scenario.Spec{
		Seed: 3,
		Chaos: []string{
			"vehicle fail a 1",
			"seed 42",
			"link outage b 1 2",
			"gps outage c 3 4",
		},
	}
	perm, changed := permuteChaos(s)
	if !changed {
		t.Fatal("three movable lines but no permutation produced")
	}
	if perm.Chaos[1] != "seed 42" {
		t.Fatalf("seed line moved: %v", perm.Chaos)
	}
	got := append([]string(nil), perm.Chaos...)
	want := append([]string(nil), s.Chaos...)
	same := true
	for i := range got {
		if got[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("permutation is the identity")
	}
	if _, changed := permuteChaos(scenario.Spec{Chaos: []string{"vehicle fail a 1"}}); changed {
		t.Fatal("single movable line cannot be permuted")
	}
}

// checkExtension must reject every way an extended run can disagree.
func TestCheckExtensionCatchesRegressions(t *testing.T) {
	base := scenario.Result{
		DurationS: 10,
		Transfers: []scenario.TransferResult{{From: "a", To: "b", DeliveredBytes: 100}},
		Vehicles: []scenario.VehicleResult{
			{ID: "a", RouteDone: true},
			{ID: "b", Failed: true, FailedAtS: 4},
		},
	}
	ok := base
	ok.DurationS = 17.5
	if err := checkExtension(base, ok); err != nil {
		t.Fatalf("clean extension rejected: %v", err)
	}
	cases := map[string]func(*scenario.Result){
		"workload change": func(r *scenario.Result) {
			r.Transfers = []scenario.TransferResult{{From: "a", To: "b", DeliveredBytes: 99}}
		},
		"shorter clock": func(r *scenario.Result) { r.DurationS = 9 },
		"un-finished route": func(r *scenario.Result) {
			r.Vehicles = []scenario.VehicleResult{{ID: "a"}, base.Vehicles[1]}
		},
		"un-failed vehicle": func(r *scenario.Result) {
			r.Vehicles = []scenario.VehicleResult{base.Vehicles[0], {ID: "b"}}
		},
		"moved kill": func(r *scenario.Result) {
			r.Vehicles = []scenario.VehicleResult{base.Vehicles[0], {ID: "b", Failed: true, FailedAtS: 5}}
		},
		"lost vehicle": func(r *scenario.Result) {
			r.Vehicles = r.Vehicles[:1]
		},
	}
	for name, tamper := range cases {
		bad := ok
		bad.Vehicles = append([]scenario.VehicleResult(nil), ok.Vehicles...)
		tamper(&bad)
		if err := checkExtension(base, bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// A Divergence names the check and the offending Spec — the error a CI log
// shows must be enough to reproduce.
func TestDivergenceError(t *testing.T) {
	d := &Divergence{Spec: scenario.Spec{Name: "gen-s7-n3"}, Check: "lockstep", Detail: "fingerprint mismatch"}
	msg := d.Error()
	for _, want := range []string{"lockstep", "gen-s7-n3", "fingerprint mismatch"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
