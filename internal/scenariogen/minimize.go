package scenariogen

import (
	"strings"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
)

// Minimize greedily shrinks a failing Spec while the predicate keeps
// failing, delta-debugging style: each round proposes structural
// reductions (drop vehicle chunks, drop workloads, drop chaos lines,
// shorten routes and the fly-out), accepts the first reduction that still
// fails, and repeats until no proposal survives or the predicate budget is
// exhausted. Every candidate is validity-gated — an invalid Spec is never
// offered to the predicate — so the returned counterexample always passes
// scenario.Spec.Validate.
//
// budget bounds predicate invocations (≤ 0 selects 200). The predicate
// should report true while the failure reproduces, e.g.
//
//	small := scenariogen.Minimize(bad, func(s scenario.Spec) bool {
//		return scenariogen.Verify(s) != nil
//	}, 0)
func Minimize(spec scenario.Spec, failing func(scenario.Spec) bool, budget int) scenario.Spec {
	if budget <= 0 {
		budget = 200
	}
	cur := spec
	tries := 0
	test := func(c scenario.Spec) bool {
		if tries >= budget || c.Validate() != nil {
			return false
		}
		tries++
		return failing(c)
	}
	for tries < budget {
		accepted := false
		for _, cand := range shrinkCandidates(cur) {
			if test(cand) {
				cur = cand
				accepted = true
				break
			}
		}
		if !accepted {
			break
		}
	}
	return cur
}

// shrinkCandidates proposes reductions of the Spec, most aggressive first.
func shrinkCandidates(s scenario.Spec) []scenario.Spec {
	var out []scenario.Spec
	n := len(s.Vehicles)

	// Vehicle chunks: halves first, then quarters, then singles for small
	// fleets (500 single-removal candidates per round would blow the
	// budget before the halving had a chance).
	if n > 1 {
		out = append(out,
			dropVehicles(s, 0, n/2),
			dropVehicles(s, n/2, n))
		if n >= 4 {
			q := n / 4
			for i := 0; i < 4; i++ {
				lo, hi := i*q, (i+1)*q
				if i == 3 {
					hi = n
				}
				out = append(out, dropVehicles(s, lo, hi))
			}
		}
		if n <= 16 {
			for i := 0; i < n; i++ {
				out = append(out, dropVehicles(s, i, i+1))
			}
		}
	}

	// Whole workload classes, then single entries.
	if len(s.Traffic) > 0 {
		c := copySpec(s)
		c.Traffic = nil
		out = append(out, c)
		for i := range s.Traffic {
			c := copySpec(s)
			c.Traffic = append(c.Traffic[:i], c.Traffic[i+1:]...)
			out = append(out, c)
		}
	}
	if len(s.Transfers) > 0 {
		c := copySpec(s)
		c.Transfers = nil
		out = append(out, c)
		for i := range s.Transfers {
			c := copySpec(s)
			c.Transfers = append(c.Transfers[:i], c.Transfers[i+1:]...)
			out = append(out, c)
		}
		// When dropping a transfer outright loses the failure, stripping
		// just its decision and failover receiver may keep it.
		for i, t := range s.Transfers {
			if t.Decision != nil || t.AltTo != "" {
				c := copySpec(s)
				c.Transfers[i].Decision = nil
				c.Transfers[i].AltTo = ""
				out = append(out, c)
			}
		}
	}

	// Chaos: the whole script, then single lines.
	if len(s.Chaos) > 0 {
		c := copySpec(s)
		c.Chaos = nil
		out = append(out, c)
		for i := range s.Chaos {
			c := copySpec(s)
			c.Chaos = append(c.Chaos[:i], c.Chaos[i+1:]...)
			out = append(out, c)
		}
	}

	// Simplify flight plans: routes away, loops off.
	for i, v := range s.Vehicles {
		if len(v.Route) > 0 {
			c := copySpec(s)
			c.Vehicles[i].Route = nil
			c.Vehicles[i].Loop = false
			c.Vehicles[i].LoopFrom = 0
			c.Vehicles[i].SpeedMPS = 0
			out = append(out, c)
		}
		if v.Loop {
			c := copySpec(s)
			c.Vehicles[i].Loop = false
			c.Vehicles[i].LoopFrom = 0
			out = append(out, c)
		}
	}

	// Shorter fly-out.
	if s.DurationS > 2 {
		c := copySpec(s)
		c.DurationS = round2(s.DurationS / 2)
		out = append(out, c)
	}
	return out
}

// dropVehicles removes vehicles with index in [lo, hi) and every workload
// or chaos reference to them, keeping the candidate valid.
func dropVehicles(s scenario.Spec, lo, hi int) scenario.Spec {
	c := copySpec(s)
	kept := make(map[string]bool)
	c.Vehicles = c.Vehicles[:0]
	for i, v := range s.Vehicles {
		if i >= lo && i < hi {
			continue
		}
		c.Vehicles = append(c.Vehicles, v)
		kept[v.ID] = true
	}
	var traffic []scenario.TrafficSpec
	for _, t := range c.Traffic {
		if kept[t.From] && kept[t.To] {
			traffic = append(traffic, t)
		}
	}
	c.Traffic = traffic
	var transfers []scenario.TransferSpec
	for _, t := range c.Transfers {
		if !kept[t.From] || !kept[t.To] {
			continue
		}
		if t.AltTo != "" && !kept[t.AltTo] {
			t.AltTo = ""
		}
		transfers = append(transfers, t)
	}
	c.Transfers = transfers
	var chaos []string
	for _, line := range c.Chaos {
		if id, ok := chaosTarget(line); ok && id != "*" && !kept[id] {
			continue
		}
		chaos = append(chaos, line)
	}
	c.Chaos = chaos
	return c
}

// chaosTarget extracts the vehicle id a chaos directive names, when it
// names one ("vehicle fail ID t", "gps outage ID ...", "link fade ID ...").
func chaosTarget(line string) (string, bool) {
	f := strings.Fields(line)
	if len(f) < 3 {
		return "", false
	}
	switch f[0] {
	case "vehicle", "gps", "link":
		return f[2], true
	}
	return "", false
}

// copySpec deep-copies the Spec's slices so candidate mutations never
// alias the original.
func copySpec(s scenario.Spec) scenario.Spec {
	c := s
	c.Vehicles = append([]scenario.VehicleSpec(nil), s.Vehicles...)
	for i, v := range s.Vehicles {
		c.Vehicles[i].Route = append([]geo.Vec3(nil), v.Route...)
	}
	c.Traffic = append([]scenario.TrafficSpec(nil), s.Traffic...)
	c.Transfers = append([]scenario.TransferSpec(nil), s.Transfers...)
	for i, t := range s.Transfers {
		if t.Decision != nil {
			d := *t.Decision
			c.Transfers[i].Decision = &d
		}
	}
	c.Chaos = append([]string(nil), s.Chaos...)
	return c
}
