package scenariogen

import (
	"context"
	"testing"

	"github.com/nowlater/nowlater/internal/runner"
	"github.com/nowlater/nowlater/internal/scenario"
)

// Worker-count invariance: compiling and running generated Specs on a
// 1-, 4- and 8-worker pool must produce identical result fingerprints with
// zero invariant violations. Any hidden shared mutable state between
// Runtimes (package-level caches, RNG leakage) would show up here — and
// under -race, as a report.
func TestWorkerCountInvariance(t *testing.T) {
	const specs = 12
	run := func(workers int) []uint64 {
		t.Helper()
		fps, err := runner.Map(context.Background(), specs,
			runner.Options{Workers: workers, Label: "scenariogen-workers"},
			func(trial int) (uint64, error) {
				spec := Generate(int64(trial))
				rt, err := scenario.CompileWithOptions(spec, scenario.Options{CheckInvariants: true})
				if err != nil {
					return 0, err
				}
				res, err := rt.Run()
				if err != nil {
					return 0, err
				}
				if v := rt.InvariantViolations(); len(v) != 0 {
					t.Errorf("workers=%d trial %d: violations: %v", workers, trial, v)
				}
				return scenario.ResultFingerprint(res), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fps
	}
	serial := run(1)
	for _, workers := range []int{4, 8} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: spec %d fingerprint %016x != serial %016x",
					workers, i, got[i], serial[i])
			}
		}
	}
}
