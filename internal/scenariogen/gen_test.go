package scenariogen

import (
	"reflect"
	"testing"

	"github.com/nowlater/nowlater/internal/scenario"
)

// genSeeds is the seed range the property tests sweep; it deliberately
// matches the committed corpus generation range so every corpus entry is
// also covered by the cheap validity properties here.
const genSeeds = 60

// Every generated Spec must be valid, deterministic, and survive the
// canonical encode/decode round trip — the generator is useless as a
// corpus factory otherwise.
func TestGeneratedSpecsValidDeterministicAndDistinct(t *testing.T) {
	fps := make(map[uint64]string, genSeeds)
	for seed := int64(0); seed < genSeeds; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		if again := Generate(seed); !reflect.DeepEqual(again, s) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		data, err := scenario.Encode(s)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := scenario.Decode(data)
		if err != nil {
			t.Fatalf("seed %d: own encoding rejected: %v", seed, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("seed %d: encode/decode changed the spec", seed)
		}
		fp, err := scenario.Fingerprint(s)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := fps[fp]; dup {
			t.Fatalf("seed %d: duplicate fingerprint with %s", seed, prev)
		}
		fps[fp] = s.Name
	}
}

// The seed sweep must actually exercise the adversarial surface: large and
// tiny fleets, loops, holds, workloads, wildcard faults and scripted
// kills. A generator that silently stopped emitting one of these would
// leave the harness blind there.
func TestGeneratedSpecsCoverAdversarialSurface(t *testing.T) {
	var (
		single, big, loops, holds          bool
		traffic, transfers, chaos, decided bool
		arrival, altTo                     bool
	)
	for seed := int64(0); seed < genSeeds; seed++ {
		s := Generate(seed)
		if len(s.Vehicles) == 1 {
			single = true
		}
		if len(s.Vehicles) > 100 {
			big = true
		}
		for _, v := range s.Vehicles {
			if v.Loop {
				loops = true
			}
			if v.Hold {
				holds = true
			}
		}
		if len(s.Traffic) > 0 {
			traffic = true
		}
		for _, tr := range s.Transfers {
			transfers = true
			if tr.Decision != nil {
				decided = true
			}
			if tr.StartOnArrival {
				arrival = true
			}
			if tr.AltTo != "" {
				altTo = true
			}
		}
		if len(s.Chaos) > 0 {
			chaos = true
		}
	}
	for name, hit := range map[string]bool{
		"single-craft fleet": single, "fleet > 100": big,
		"looping route": loops, "holding craft": holds,
		"traffic workload": traffic, "transfer workload": transfers,
		"chaos script": chaos, "decided transfer": decided,
		"arrival-gated transfer": arrival, "failover receiver": altTo,
	} {
		if !hit {
			t.Errorf("%d seeds never produced a %s", int64(genSeeds), name)
		}
	}
}

// Params bounds must hold for every seed.
func TestGeneratorRespectsParams(t *testing.T) {
	p := Params{MaxVehicles: 12, MaxDurationS: 10, MaxChaosLines: 3}
	g := New(p)
	for seed := int64(0); seed < 40; seed++ {
		s := g.Spec(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Vehicles) > p.MaxVehicles {
			t.Fatalf("seed %d: %d vehicles > max %d", seed, len(s.Vehicles), p.MaxVehicles)
		}
		if s.DurationS > p.MaxDurationS {
			t.Fatalf("seed %d: duration %v > max %v", seed, s.DurationS, p.MaxDurationS)
		}
		if len(s.Chaos) > p.MaxChaosLines {
			t.Fatalf("seed %d: %d chaos lines > max %d", seed, len(s.Chaos), p.MaxChaosLines)
		}
	}
}
