package scenariogen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/scenario"
)

// CorpusSeeds is the generated slice of the committed corpus: Specs for
// seeds [0, CorpusSeeds) live under testdata/corpus with their stored
// result fingerprints. It matches genSeeds minus the handful of seeds the
// property tests sweep beyond the corpus, and must only grow — CI replays
// every committed entry.
const CorpusSeeds = 55

// CorpusEntry is one manifest line: a named Spec file with its identity
// and expected outcome pinned.
type CorpusEntry struct {
	Name string `json:"name"`
	File string `json:"file"`
	// Seed is the generator seed for generated entries; handcrafted
	// regression entries set Generated false and Seed 0.
	Seed      int64 `json:"seed"`
	Generated bool  `json:"generated"`
	// SpecFingerprint pins the input (%016x of scenario.Fingerprint);
	// ResultFingerprint pins the outcome (%016x of ResultFingerprint).
	SpecFingerprint   string `json:"spec_fingerprint"`
	ResultFingerprint string `json:"result_fingerprint"`
}

// CorpusSpecs returns every Spec the committed corpus holds: the generated
// sweep plus the handcrafted regression scenarios for bugs the harness
// found (each one a Spec that crashed or diverged before its fix).
func CorpusSpecs() []scenario.Spec {
	specs := make([]scenario.Spec, 0, CorpusSeeds+3)
	for seed := int64(0); seed < CorpusSeeds; seed++ {
		specs = append(specs, Generate(seed))
	}
	specs = append(specs, regressionSpecs()...)
	return specs
}

// regressionSpecs are the handcrafted corpus entries. Each reproduces a
// bug the differential harness caught; their names are stable and their
// fingerprints pinned like any generated entry.
func regressionSpecs() []scenario.Spec {
	// A holding quad spawned above the Arducopter ceiling: before the
	// Settled fix the event-driven core elided it frozen at 120 m while
	// the lockstep reference clamped it to 100 m, diverging every
	// downstream link geometry.
	ceiling := scenario.Spec{
		Name: "reg-ceiling-holder",
		Seed: 1,
		Vehicles: []scenario.VehicleSpec{
			{ID: "high", Platform: scenario.PlatformQuad,
				Start: geo.Vec3{X: 100, Y: 100, Z: 120}, Hold: true},
			{ID: "rx", Platform: scenario.PlatformQuad,
				Start: geo.Vec3{Z: 30}, Hold: true},
		},
		Transfers: []scenario.TransferSpec{
			{From: "high", To: "rx", SizeMB: 0.3, DeadlineS: 30},
		},
		DurationS: 12,
	}

	// A loop route re-entering at its final waypoint, with consecutive
	// waypoints inside the arrival radius: before the hop-budget fix the
	// arrival callbacks recursed until the stack overflowed.
	loop := scenario.Spec{
		Name: "reg-loop-reentry",
		Seed: 2,
		Vehicles: []scenario.VehicleSpec{
			{ID: "spin", Platform: scenario.PlatformQuad, Start: geo.Vec3{Z: 10},
				Route:    []geo.Vec3{{X: 1, Z: 10}, {X: 2, Z: 10}},
				Loop:     true,
				LoopFrom: 1},
			{ID: "peer", Platform: scenario.PlatformQuad,
				Start: geo.Vec3{X: 60, Z: 10}, Hold: true},
		},
		Traffic: []scenario.TrafficSpec{
			{From: "spin", To: "peer", DurationS: 2, WindowS: 1},
		},
		DurationS: 6,
	}

	// A scripted kill on an exact accumulated tick boundary, mid-way
	// through a settled holder's elided stretch: the kill must force the
	// bit-exact battery replay at an instant no tick poll would visit.
	at := 0.0
	for i := 0; i < 311; i++ {
		at += scenario.ControlTickS
	}
	tickKill := scenario.Spec{
		Name: "reg-tick-boundary-kill",
		Seed: 3,
		Vehicles: []scenario.VehicleSpec{
			{ID: "victim", Platform: scenario.PlatformQuad,
				Start: geo.Vec3{X: 40, Z: 20}, Hold: true},
			{ID: "witness", Platform: scenario.PlatformQuad,
				Start: geo.Vec3{Z: 20}, Hold: true},
		},
		Transfers: []scenario.TransferSpec{
			{From: "witness", To: "victim", SizeMB: 0.5, DeadlineS: 20, StartS: 2},
		},
		Chaos:     []string{fmt.Sprintf("vehicle fail victim %g", at)},
		DurationS: 15,
	}
	return []scenario.Spec{ceiling, loop, tickKill}
}

// corpusEntry computes the pinned manifest line for one Spec by running it
// with invariant checking on.
func corpusEntry(s scenario.Spec, generated bool) (CorpusEntry, error) {
	specFP, err := scenario.Fingerprint(s)
	if err != nil {
		return CorpusEntry{}, err
	}
	rt, err := scenario.CompileWithOptions(s, scenario.Options{CheckInvariants: true})
	if err != nil {
		return CorpusEntry{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	res, err := rt.Run()
	if err != nil {
		return CorpusEntry{}, fmt.Errorf("%s: %w", s.Name, err)
	}
	if v := rt.InvariantViolations(); len(v) != 0 {
		return CorpusEntry{}, fmt.Errorf("%s: invariant violations: %v", s.Name, v)
	}
	e := CorpusEntry{
		Name:              s.Name,
		File:              s.Name + ".json",
		Generated:         generated,
		SpecFingerprint:   fmt.Sprintf("%016x", specFP),
		ResultFingerprint: fmt.Sprintf("%016x", scenario.ResultFingerprint(res)),
	}
	if generated {
		e.Seed = s.Seed
	}
	return e, nil
}

// WriteCorpus regenerates the committed corpus into dir: one canonical
// Spec file per entry plus manifest.json with the pinned fingerprints.
// Only the corpus regeneration flow (REGEN_CORPUS=1, see EXPERIMENTS.md)
// calls this; CI reads the files it wrote.
func WriteCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	specs := CorpusSpecs()
	entries := make([]CorpusEntry, 0, len(specs))
	for i, s := range specs {
		generated := i < CorpusSeeds
		e, err := corpusEntry(s, generated)
		if err != nil {
			return err
		}
		data, err := scenario.Encode(s)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, e.File), data, 0o644); err != nil {
			return err
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}

// ReadManifest loads the corpus manifest from dir.
func ReadManifest(dir string) ([]CorpusEntry, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var entries []CorpusEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("corpus manifest: %w", err)
	}
	return entries, nil
}
