package core

// The paper notes that mixed strategies "would require a further dimension
// (the speed) to empirical-driven throughput estimation, leading to an
// interesting extension of our model" (Section 3.2). SurfaceThroughput is
// that extension: a bilinear-interpolated empirical surface s(d, v), and a
// surface-aware mixed-strategy runner that charges the measured moving
// throughput instead of the scalar SpeedPenalty approximation.

import (
	"errors"
	"fmt"
	"math"
)

// SurfaceThroughput is a measured throughput surface over distance and
// relative speed, bilinearly interpolated and edge-clamped.
type SurfaceThroughput struct {
	distances []float64 // ascending
	speeds    []float64 // ascending
	bps       [][]float64
}

// NewSurfaceThroughput builds a surface from a [len(distances)][len(speeds)]
// grid of throughput samples in bits/s.
func NewSurfaceThroughput(distances, speeds []float64, bps [][]float64) (*SurfaceThroughput, error) {
	if len(distances) < 2 || len(speeds) < 2 {
		return nil, errors.New("core: surface needs ≥2 distances and ≥2 speeds")
	}
	for i := 1; i < len(distances); i++ {
		if distances[i] <= distances[i-1] {
			return nil, fmt.Errorf("core: distances not increasing at %d", i)
		}
	}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] <= speeds[i-1] {
			return nil, fmt.Errorf("core: speeds not increasing at %d", i)
		}
	}
	if len(bps) != len(distances) {
		return nil, fmt.Errorf("core: grid has %d rows, want %d", len(bps), len(distances))
	}
	grid := make([][]float64, len(bps))
	for i, row := range bps {
		if len(row) != len(speeds) {
			return nil, fmt.Errorf("core: row %d has %d cols, want %d", i, len(row), len(speeds))
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("core: invalid throughput at [%d][%d]", i, j)
			}
		}
		grid[i] = append([]float64(nil), row...)
	}
	return &SurfaceThroughput{
		distances: append([]float64(nil), distances...),
		speeds:    append([]float64(nil), speeds...),
		bps:       grid,
	}, nil
}

// bracket returns the index i and fraction f such that xs[i] ≤ x ≤ xs[i+1],
// clamped to the grid.
func bracket(xs []float64, x float64) (int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0
	}
	if x >= xs[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, (x - xs[lo]) / (xs[lo+1] - xs[lo])
}

// At returns the interpolated throughput at (d, v) in bits/s.
func (s *SurfaceThroughput) At(d, v float64) float64 {
	i, fd := bracket(s.distances, d)
	j, fv := bracket(s.speeds, v)
	v00 := s.bps[i][j]
	v01 := s.bps[i][j+1]
	v10 := s.bps[i+1][j]
	v11 := s.bps[i+1][j+1]
	return (1-fd)*((1-fv)*v00+fv*v01) + fd*((1-fv)*v10+fv*v11)
}

// Bps implements ThroughputModel with the hover column (v = 0).
func (s *SurfaceThroughput) Bps(d float64) float64 { return s.At(d, 0) }

// RunMixedStrategySurface is RunMixedStrategy with the empirical surface:
// the en-route rate is s(d(t), v) rather than s(d)·penalty(v).
func (s Scenario) RunMixedStrategySurface(target float64, surf *SurfaceThroughput) (MixedOutcome, error) {
	if err := s.Validate(); err != nil {
		return MixedOutcome{}, err
	}
	if surf == nil {
		return MixedOutcome{}, errors.New("core: nil surface")
	}
	d := s.D0M
	target = math.Max(s.minD(), math.Min(target, s.D0M))
	remaining := s.MdataBytes * 8
	total := remaining
	t := 0.0
	const dt = 0.02
	for d > target && t < maxSimulatedS {
		remaining -= surf.At(d, s.SpeedMPS) * dt
		if remaining < 0 {
			remaining = 0
		}
		d = math.Max(target, d-s.SpeedMPS*dt)
		t += dt
		if remaining == 0 {
			return MixedOutcome{TargetDM: target, CompletionS: t,
				DeliveredEnRouteMB: total / 8 / 1e6}, nil
		}
	}
	enRoute := (total - remaining) / 8 / 1e6
	bps := surf.At(target, 0)
	if bps <= 0 {
		return MixedOutcome{TargetDM: target, CompletionS: math.Inf(1),
			DeliveredEnRouteMB: enRoute}, nil
	}
	t += remaining / bps
	return MixedOutcome{TargetDM: target, CompletionS: t, DeliveredEnRouteMB: enRoute}, nil
}
