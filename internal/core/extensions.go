package core

// This file implements the model extensions the paper names but leaves
// open (Sections 5 and 7): a non-stationary (position-dependent) failure
// rate, speed as an extra optimization dimension, and the mixed
// ship-while-transmitting strategy excluded from the base model for
// tractability.

import (
	"errors"
	"fmt"
	"math"
)

// --- Non-stationary failure rate -----------------------------------------

// RhoField is a position-dependent failure rate along the shipping line:
// given the current distance-to-receiver x ∈ [0, d0], it returns the local
// failure rate ρ(x) per metre. The paper's base model is the constant
// field; "different results are expected, e.g., for a non-stationary
// failure rate" (Section 4).
type RhoField func(x float64) float64

// ConstantRho lifts a scalar rate into a field.
func ConstantRho(rho float64) RhoField { return func(float64) float64 { return rho } }

// LinearRho is a field that varies linearly from rho0 at the receiver
// (x = 0) to rho1 at distance span — e.g. weather worsening away from (or
// toward) the rescue site.
func LinearRho(rho0, rho1, span float64) RhoField {
	return func(x float64) float64 {
		if span <= 0 {
			return rho0
		}
		t := x / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		r := rho0 + (rho1-rho0)*t
		if r < 0 {
			r = 0
		}
		return r
	}
}

// HazardZoneRho is a field with a uniform background rate and an elevated
// band [lo, hi] (a storm cell or obstacle corridor on the approach).
func HazardZoneRho(background, elevated, lo, hi float64) RhoField {
	return func(x float64) float64 {
		if x >= lo && x <= hi {
			return elevated
		}
		return background
	}
}

// NonStationaryScenario is a Scenario whose discount integrates a
// RhoField along the shipping leg: δ(d) = exp(−∫_d^{d0} ρ(x) dx).
type NonStationaryScenario struct {
	Scenario
	Field RhoField
}

// integralSteps is the trapezoid resolution of the field integral.
const integralSteps = 512

// Discount integrates the field over the travelled segment.
func (s NonStationaryScenario) Discount(d float64) float64 {
	if s.Field == nil {
		return s.Scenario.Discount(d)
	}
	lo, hi := d, s.D0M
	if lo >= hi {
		return 1
	}
	h := (hi - lo) / integralSteps
	sum := (s.Field(lo) + s.Field(hi)) / 2
	for i := 1; i < integralSteps; i++ {
		sum += s.Field(lo + float64(i)*h)
	}
	return math.Exp(-sum * h)
}

// Utility is U(d) with the field discount.
func (s NonStationaryScenario) Utility(d float64) float64 {
	return s.Discount(d) * s.InstantUtility(d)
}

// Optimize solves argmax U(d) for the non-stationary field. The field may
// make U multi-modal, so only the dense grid plus local refinement is
// used.
func (s NonStationaryScenario) Optimize() (Optimum, error) {
	if err := s.Validate(); err != nil {
		return Optimum{}, err
	}
	lo, hi := s.minD(), s.D0M
	bestD, bestU := hi, s.Utility(hi)
	step := (hi - lo) / gridPoints
	if step <= 0 {
		step = 1
	}
	for i := 0; i <= gridPoints; i++ {
		d := lo + float64(i)*step
		if d > hi {
			d = hi
		}
		if u := s.Utility(d); u > bestU {
			bestD, bestU = d, u
		}
	}
	// Local ternary refinement around the best grid point.
	a, b := math.Max(lo, bestD-step), math.Min(hi, bestD+step)
	for i := 0; i < 60 && b-a > 1e-9; i++ {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		if s.Utility(m1) < s.Utility(m2) {
			a = m1
		} else {
			b = m2
		}
	}
	if d := (a + b) / 2; s.Utility(d) > bestU {
		bestD, bestU = d, s.Utility(d)
	}
	return Optimum{
		DoptM:               bestD,
		Utility:             bestU,
		CommDelay:           s.CommDelay(bestD),
		Survival:            s.Discount(bestD),
		TransmitImmediately: math.Abs(bestD-s.D0M) < 1e-6,
	}, nil
}

// --- Speed as an optimization dimension -----------------------------------

// SpeedCost makes the per-metre failure rate speed-dependent:
// ρ(v) = ρ0 · (v/vref)^Gamma. Flying faster shortens exposure time but
// stresses the airframe and narrows the margin for evasives; Gamma > 1
// creates an interior optimal speed. Gamma = 0 recovers the paper's model,
// where faster is always (weakly) better.
type SpeedCost struct {
	VRefMPS float64
	Gamma   float64
}

// Rho returns the effective per-metre rate at speed v for base rate rho0.
func (c SpeedCost) Rho(rho0, v float64) float64 {
	if c.Gamma == 0 || c.VRefMPS <= 0 || v <= 0 {
		return rho0
	}
	return rho0 * math.Pow(v/c.VRefMPS, c.Gamma)
}

// SpeedOptimum is the joint (d, v) decision.
type SpeedOptimum struct {
	DoptM    float64
	VoptMPS  float64
	Utility  float64
	Delay    float64
	Survival float64
}

// OptimizeWithSpeed maximizes U(d, v) = exp(−ρ(v)·(d0−d)) / Cdelay(d, v)
// over d ∈ [dmin, d0] and v ∈ [vMin, vMax] — the "new dimensions of the
// optimization problem" the paper's conclusion calls for.
func (s Scenario) OptimizeWithSpeed(vMin, vMax float64, cost SpeedCost) (SpeedOptimum, error) {
	if err := s.Validate(); err != nil {
		return SpeedOptimum{}, err
	}
	if vMin <= 0 || vMax < vMin {
		return SpeedOptimum{}, fmt.Errorf("core: speed range [%v, %v] invalid", vMin, vMax)
	}
	const vSteps = 64
	best := SpeedOptimum{Utility: -1}
	for j := 0; j <= vSteps; j++ {
		v := vMin + (vMax-vMin)*float64(j)/vSteps
		sv := s
		sv.SpeedMPS = v
		m := sv.Failure
		m.Rho = cost.Rho(s.Failure.Rho, v)
		sv.Failure = m
		opt, err := sv.Optimize()
		if err != nil {
			return SpeedOptimum{}, err
		}
		if opt.Utility > best.Utility {
			best = SpeedOptimum{
				DoptM: opt.DoptM, VoptMPS: v,
				Utility: opt.Utility, Delay: opt.CommDelay, Survival: opt.Survival,
			}
		}
	}
	return best, nil
}

// --- Mixed strategy ---------------------------------------------------------

// MixedOutcome is the result of the ship-while-transmitting strategy.
type MixedOutcome struct {
	// TargetDM is the hover point the strategy ships to.
	TargetDM float64
	// CompletionS is the total delivery time.
	CompletionS float64
	// DeliveredEnRouteMB is how much arrived before reaching the target.
	DeliveredEnRouteMB float64
}

// RunMixedStrategy ships to target d while transmitting at the speed-
// penalized rate, then hovers and transmits the remainder — the mixed
// strategy the paper notes "could further reduce the communication delay"
// but excludes for tractability (Section 2.2).
func (s Scenario) RunMixedStrategy(target float64, pen SpeedPenalty) (MixedOutcome, error) {
	if err := s.Validate(); err != nil {
		return MixedOutcome{}, err
	}
	d := s.D0M
	target = math.Max(s.minD(), math.Min(target, s.D0M))
	factor := pen.Factor(s.SpeedMPS)
	remaining := s.MdataBytes * 8
	total := remaining
	t := 0.0
	const dt = 0.02
	for d > target && t < maxSimulatedS {
		remaining -= s.Throughput.Bps(d) * factor * dt
		if remaining < 0 {
			remaining = 0
		}
		d = math.Max(target, d-s.SpeedMPS*dt)
		t += dt
		if remaining == 0 {
			return MixedOutcome{TargetDM: target, CompletionS: t,
				DeliveredEnRouteMB: total / 8 / 1e6}, nil
		}
	}
	enRoute := (total - remaining) / 8 / 1e6
	bps := s.Throughput.Bps(target)
	if bps <= 0 {
		return MixedOutcome{TargetDM: target, CompletionS: math.Inf(1),
			DeliveredEnRouteMB: enRoute}, nil
	}
	t += remaining / bps
	return MixedOutcome{TargetDM: target, CompletionS: t, DeliveredEnRouteMB: enRoute}, nil
}

// OptimizeMixed finds the target distance minimizing the mixed strategy's
// completion time (a pure delay optimization; the failure discount applies
// as in the base model if desired by the caller).
func (s Scenario) OptimizeMixed(pen SpeedPenalty) (MixedOutcome, error) {
	if err := s.Validate(); err != nil {
		return MixedOutcome{}, err
	}
	lo, hi := s.minD(), s.D0M
	if hi <= lo {
		return s.RunMixedStrategy(hi, pen)
	}
	best := MixedOutcome{CompletionS: math.Inf(1)}
	found := false
	const steps = 48
	for i := 0; i <= steps; i++ {
		d := lo + (hi-lo)*float64(i)/steps
		out, err := s.RunMixedStrategy(d, pen)
		if err != nil {
			return MixedOutcome{}, err
		}
		if out.CompletionS < best.CompletionS {
			best = out
			found = true
		}
	}
	if !found {
		return MixedOutcome{}, errors.New("core: no feasible mixed strategy")
	}
	return best, nil
}

// --- Re-positioning cost ----------------------------------------------------

// RepositionOptimum extends Optimum with the post-delivery return leg.
type RepositionOptimum struct {
	Optimum
	// ReturnTimeS is the time to fly back to the mission track after
	// transmitting.
	ReturnTimeS float64
}

// OptimizeWithReturn solves the decision when the ferry must return to its
// interrupted mission after delivering — "studying the cost of
// re-positioning during the planned mission" (Section 7). The ferry left
// its track at distance d0; after transmitting at d it flies back, so the
// effective delay charged is Cdelay(d) + w·(d0 − d)/v, where w ∈ [0, 1]
// weights how much the return leg matters to the mission (w = 0 recovers
// the paper's model; w = 1 charges the full round trip).
func (s Scenario) OptimizeWithReturn(returnWeight float64) (RepositionOptimum, error) {
	if err := s.Validate(); err != nil {
		return RepositionOptimum{}, err
	}
	if returnWeight < 0 || returnWeight > 1 {
		return RepositionOptimum{}, fmt.Errorf("core: return weight %v outside [0,1]", returnWeight)
	}
	lo, hi := s.minD(), s.D0M
	bestD, bestU := hi, -1.0
	utility := func(d float64) float64 {
		c := s.CommDelay(d) + returnWeight*(s.D0M-d)/s.SpeedMPS
		if math.IsInf(c, 1) || c <= 0 {
			return 0
		}
		// The return leg also risks the airframe: the discount covers the
		// round trip travelled distance.
		disc := s.Failure.Survival((1 + returnWeight) * (s.D0M - d))
		return disc / c
	}
	steps := gridPoints
	for i := 0; i <= steps; i++ {
		d := lo + (hi-lo)*float64(i)/float64(steps)
		if u := utility(d); u > bestU {
			bestD, bestU = d, u
		}
	}
	return RepositionOptimum{
		Optimum: Optimum{
			DoptM:               bestD,
			Utility:             bestU,
			CommDelay:           s.CommDelay(bestD),
			Survival:            s.Failure.Survival((1 + returnWeight) * (s.D0M - bestD)),
			TransmitImmediately: math.Abs(bestD-s.D0M) < 1e-6,
		},
		ReturnTimeS: returnWeight * (s.D0M - bestD) / s.SpeedMPS,
	}, nil
}
