package core

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/failure"
)

func TestConstantFieldMatchesBaseModel(t *testing.T) {
	base := AirplaneBaseline()
	ns := NonStationaryScenario{Scenario: base, Field: ConstantRho(base.Failure.Rho)}
	for _, d := range []float64{20, 100, 200, 300} {
		a, b := base.Discount(d), ns.Discount(d)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("constant field diverges at %v: %v vs %v", d, a, b)
		}
	}
	optBase, err := base.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	optNS, err := ns.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(optBase.DoptM-optNS.DoptM) > 1 {
		t.Fatalf("dopt diverges: %v vs %v", optBase.DoptM, optNS.DoptM)
	}
	// Nil field falls back to the scenario's scalar model.
	nilField := NonStationaryScenario{Scenario: base}
	if math.Abs(nilField.Discount(100)-base.Discount(100)) > 1e-12 {
		t.Fatal("nil field should use the base discount")
	}
}

func TestLinearRhoField(t *testing.T) {
	f := LinearRho(1e-4, 1e-3, 300)
	if f(0) != 1e-4 || math.Abs(f(300)-1e-3) > 1e-12 {
		t.Fatalf("endpoints: %v, %v", f(0), f(300))
	}
	if f(-10) != 1e-4 || math.Abs(f(1000)-1e-3) > 1e-12 {
		t.Fatal("clamping broken")
	}
	if mid := f(150); mid <= 1e-4 || mid >= 1e-3 {
		t.Fatalf("midpoint %v", mid)
	}
	// Negative rates clamp to zero; zero span degenerates to rho0.
	if LinearRho(-1, -2, 100)(50) != 0 {
		t.Fatal("negative rate not clamped")
	}
	if LinearRho(5e-4, 9e-4, 0)(50) != 5e-4 {
		t.Fatal("zero span should return rho0")
	}
}

// TestHazardZoneShiftsDopt: with a hazardous band on the approach, the
// optimum moves to avoid crossing it — the paper's predicted
// non-stationary behaviour ("different results are expected").
func TestHazardZoneShiftsDopt(t *testing.T) {
	base := AirplaneBaseline()
	clean, err := base.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// A violent hazard between 40 m and clean-dopt: pushing through it is
	// now expensive, so the optimum should retreat to (or beyond) the
	// hazard's outer edge.
	ns := NonStationaryScenario{
		Scenario: base,
		Field:    HazardZoneRho(base.Failure.Rho, 0.05, 40, clean.DoptM+40),
	}
	opt, err := ns.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM < clean.DoptM+30 {
		t.Fatalf("hazard should push dopt outward: clean %v, hazard %v", clean.DoptM, opt.DoptM)
	}
	if opt.Survival <= 0 || opt.Survival > 1 {
		t.Fatalf("survival = %v", opt.Survival)
	}
}

func TestNonStationaryDiscountMonotone(t *testing.T) {
	ns := NonStationaryScenario{
		Scenario: AirplaneBaseline(),
		Field:    LinearRho(5e-4, 2e-3, 300),
	}
	prev := -1.0
	for d := 20.0; d <= 300; d += 10 {
		disc := ns.Discount(d)
		if disc < prev {
			t.Fatalf("discount should grow with d (less travel): %v at %v", disc, d)
		}
		prev = disc
	}
	if ns.Discount(300) != 1 {
		t.Fatal("no travel must be riskless")
	}
}

func TestSpeedCost(t *testing.T) {
	c := SpeedCost{VRefMPS: 10, Gamma: 2}
	if got := c.Rho(1e-4, 10); math.Abs(got-1e-4) > 1e-18 {
		t.Fatalf("at vref: %v", got)
	}
	if got := c.Rho(1e-4, 20); math.Abs(got-4e-4) > 1e-18 {
		t.Fatalf("at 2×vref with gamma 2: %v", got)
	}
	if got := (SpeedCost{}).Rho(1e-4, 50); got != 1e-4 {
		t.Fatalf("gamma 0 should be identity: %v", got)
	}
}

func TestOptimizeWithSpeedFindsInteriorOptimum(t *testing.T) {
	sc := AirplaneBaseline()
	// Strong speed cost: an interior speed should win over both extremes.
	opt, err := sc.OptimizeWithSpeed(2, 20, SpeedCost{VRefMPS: 10, Gamma: 3})
	if err != nil {
		t.Fatal(err)
	}
	if opt.VoptMPS <= 2 || opt.VoptMPS >= 20 {
		t.Logf("note: optimum at boundary v=%v (allowed but unexpected)", opt.VoptMPS)
	}
	if opt.Utility <= 0 || opt.Survival <= 0 || opt.Survival > 1 {
		t.Fatalf("degenerate optimum: %+v", opt)
	}
	// With no speed cost, faster is weakly better: vopt = vmax.
	free, err := sc.OptimizeWithSpeed(2, 20, SpeedCost{})
	if err != nil {
		t.Fatal(err)
	}
	if free.VoptMPS < 19.9 {
		t.Fatalf("free speed should max out: %v", free.VoptMPS)
	}
	// Invalid ranges are rejected.
	if _, err := sc.OptimizeWithSpeed(0, 10, SpeedCost{}); err == nil {
		t.Fatal("vMin=0 accepted")
	}
	if _, err := sc.OptimizeWithSpeed(10, 5, SpeedCost{}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestOptimizeWithSpeedBeatsFixedSpeed(t *testing.T) {
	sc := AirplaneBaseline()
	cost := SpeedCost{VRefMPS: 10, Gamma: 2}
	joint, err := sc.OptimizeWithSpeed(2, 20, cost)
	if err != nil {
		t.Fatal(err)
	}
	// The joint optimum dominates the paper's fixed cruise speed under the
	// same risk model.
	fixed := sc
	m := fixed.Failure
	m.Rho = cost.Rho(sc.Failure.Rho, sc.SpeedMPS)
	fixed.Failure = m
	fixedOpt, err := fixed.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if joint.Utility+1e-12 < fixedOpt.Utility {
		t.Fatalf("joint optimum %v below fixed-speed %v", joint.Utility, fixedOpt.Utility)
	}
}

func TestMixedStrategyBeatsPureStrategies(t *testing.T) {
	sc := fig1Scenario()
	pen := DefaultSpeedPenalty()
	mixed, err := sc.OptimizeMixed(pen)
	if err != nil {
		t.Fatal(err)
	}
	ship, err := sc.RunStrategy(ShipThenTransmit, mixed.TargetDM, pen)
	if err != nil {
		t.Fatal(err)
	}
	// Transmitting en route can only help relative to shipping silently to
	// the same point ("mixed strategies could further reduce the
	// communication delay", Section 2.2).
	if mixed.CompletionS > ship.CompletionS+1e-9 {
		t.Fatalf("mixed (%v) worse than silent shipping (%v)", mixed.CompletionS, ship.CompletionS)
	}
	if mixed.DeliveredEnRouteMB <= 0 {
		t.Fatal("mixed strategy delivered nothing en route")
	}
}

func TestMixedStrategyDeadLink(t *testing.T) {
	dead, err := NewTableThroughput([]float64{10, 500}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := failure.NewModel(0)
	sc := Scenario{D0M: 100, SpeedMPS: 5, MdataBytes: 1e6, Failure: m,
		Throughput: dead, MinDistanceM: 20}
	out, err := sc.RunMixedStrategy(50, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.CompletionS, 1) {
		t.Fatalf("dead link completed: %v", out.CompletionS)
	}
}

func TestRunMixedStrategyClampsTarget(t *testing.T) {
	sc := fig1Scenario()
	out, err := sc.RunMixedStrategy(-50, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	if out.TargetDM != MinSeparationM {
		t.Fatalf("target = %v", out.TargetDM)
	}
}

func TestOptimizeWithReturn(t *testing.T) {
	sc := AirplaneBaseline()
	free, err := sc.OptimizeWithReturn(0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// w = 0 recovers the paper's model.
	if math.Abs(free.DoptM-base.DoptM) > 1 {
		t.Fatalf("w=0 diverges: %v vs %v", free.DoptM, base.DoptM)
	}
	if free.ReturnTimeS != 0 {
		t.Fatalf("w=0 return time = %v", free.ReturnTimeS)
	}
	// Charging the return leg makes deep incursions less attractive:
	// dopt moves outward (weakly) as w grows.
	prev := free.DoptM
	for _, w := range []float64{0.25, 0.5, 1} {
		opt, err := sc.OptimizeWithReturn(w)
		if err != nil {
			t.Fatal(err)
		}
		if opt.DoptM < prev-1 {
			t.Fatalf("dopt moved inward at w=%v: %v (prev %v)", w, opt.DoptM, prev)
		}
		prev = opt.DoptM
		if opt.ReturnTimeS < 0 {
			t.Fatalf("negative return time at w=%v", w)
		}
	}
	if _, err := sc.OptimizeWithReturn(-0.1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := sc.OptimizeWithReturn(1.5); err == nil {
		t.Fatal("weight > 1 accepted")
	}
}

func TestSurfaceThroughput(t *testing.T) {
	surf, err := NewSurfaceThroughput(
		[]float64{20, 80},
		[]float64{0, 8},
		[][]float64{{28e6, 14e6}, {6e6, 3e6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Corners exact.
	if surf.At(20, 0) != 28e6 || surf.At(80, 8) != 3e6 {
		t.Fatalf("corners: %v %v", surf.At(20, 0), surf.At(80, 8))
	}
	// Bilinear midpoint.
	if got := surf.At(50, 4); math.Abs(got-12.75e6) > 1 {
		t.Fatalf("midpoint = %v, want 12.75e6", got)
	}
	// Edge clamping.
	if surf.At(5, -3) != 28e6 || surf.At(500, 99) != 3e6 {
		t.Fatal("clamping broken")
	}
	// Bps is the hover column.
	if surf.Bps(20) != 28e6 {
		t.Fatal("Bps should read v=0")
	}
	// Validation.
	if _, err := NewSurfaceThroughput([]float64{1}, []float64{0, 1}, nil); err == nil {
		t.Fatal("single distance accepted")
	}
	if _, err := NewSurfaceThroughput([]float64{1, 2}, []float64{1, 0},
		[][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("descending speeds accepted")
	}
	if _, err := NewSurfaceThroughput([]float64{1, 2}, []float64{0, 1},
		[][]float64{{1, 1}}); err == nil {
		t.Fatal("short grid accepted")
	}
	if _, err := NewSurfaceThroughput([]float64{1, 2}, []float64{0, 1},
		[][]float64{{1, -1}, {1, 1}}); err == nil {
		t.Fatal("negative cell accepted")
	}
}

func TestRunMixedStrategySurface(t *testing.T) {
	surf, err := NewSurfaceThroughput(
		[]float64{20, 100},
		[]float64{0, 10},
		[][]float64{{28e6, 10e6}, {5e6, 1e6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := fig1Scenario()
	out, err := sc.RunMixedStrategySurface(20, surf)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(out.CompletionS, 1) || out.DeliveredEnRouteMB <= 0 {
		t.Fatalf("surface mixed run: %+v", out)
	}
	// The surface run must agree with the scalar-penalty run in spirit:
	// slower en-route rate than hover, so a finite, larger-than-pure-hover
	// completion.
	hoverOnly := sc.MdataBytes * 8 / surf.At(20, 0)
	if out.CompletionS < hoverOnly {
		t.Fatalf("mixed completion %v beat teleport bound %v", out.CompletionS, hoverOnly)
	}
	if _, err := sc.RunMixedStrategySurface(20, nil); err == nil {
		t.Fatal("nil surface accepted")
	}
}
