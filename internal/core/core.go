// Package core implements the paper's contribution: the delayed-
// gratification model for deciding when a data-ferrying UAV should
// transmit (Section 2).
//
// A UAV holding Mdata bytes comes into radio range of its receiver at
// distance d0. It can transmit immediately, or ship itself closer to some
// distance d < d0 and transmit there, where the link is faster. The
// communication delay of transmitting at d is
//
//	Cdelay(d) = Tship + Ttx = (d0 − d)/v + Mdata/s(d)
//
// and the chance of surviving the shipping leg is δ(d) = e^{−ρ(d0−d)}.
// The utility to maximize (Eq. 1) is
//
//	U(d) = δ(d)·u(d) = e^{−ρ(d0−d)} / Cdelay(d)
//
// subject to 0 ≤ d ≤ d0 (Eq. 2), with a minimum separation to avoid
// mid-air collisions (the paper uses 20 m).
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/mission"
)

// MinSeparationM is the paper's anti-collision floor: "We consider a
// minimum distance of 20 m between two UAVs to avoid physical collisions."
const MinSeparationM = 20.0

// ThroughputModel is the throughput-vs-distance law s(d) in bits/second at
// near-zero relative speed ("hover and transmit", the strategy the model
// assumes after Section 2.2).
type ThroughputModel interface {
	// Bps returns the expected UDP throughput at separation d metres.
	// Implementations return 0 when the link cannot carry data at d.
	Bps(d float64) float64
}

// LogFitThroughput is the paper's fitted law s(d) = 10⁶·(A·log2(d) + B)
// with A, B in Mb/s (Section 4). It clamps at zero once the fit goes
// negative.
type LogFitThroughput struct {
	AMbps, BMbps float64
}

// Bps implements ThroughputModel.
func (l LogFitThroughput) Bps(d float64) float64 {
	if d < 1 {
		d = 1
	}
	s := 1e6 * (l.AMbps*math.Log2(d) + l.BMbps)
	if s < 0 {
		return 0
	}
	return s
}

// AirplaneFit is the paper's airplane fit: s(d) = 10⁶·(−5.56·log2(d)+49),
// R² = 0.9.
func AirplaneFit() LogFitThroughput { return LogFitThroughput{AMbps: -5.56, BMbps: 49} }

// QuadrocopterFit is the paper's quadrocopter fit:
// s(d) = 10⁶·(−10.5·log2(d)+73), R² = 0.96.
func QuadrocopterFit() LogFitThroughput { return LogFitThroughput{AMbps: -10.5, BMbps: 73} }

// TableThroughput interpolates measured (distance, bits/s) samples — the
// bridge from the packet-level simulator's medians to the analytic model.
type TableThroughput struct {
	distances []float64
	bps       []float64
}

// NewTableThroughput builds an interpolating model from samples sorted by
// distance. At least two samples are required; queries outside the range
// clamp to the edge values.
func NewTableThroughput(distances, bps []float64) (*TableThroughput, error) {
	if len(distances) != len(bps) {
		return nil, errors.New("core: mismatched table lengths")
	}
	if len(distances) < 2 {
		return nil, errors.New("core: need at least two samples")
	}
	for i := 1; i < len(distances); i++ {
		if distances[i] <= distances[i-1] {
			return nil, fmt.Errorf("core: distances not strictly increasing at %d", i)
		}
	}
	for i, v := range bps {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: invalid throughput %v at %d", v, i)
		}
	}
	return &TableThroughput{
		distances: append([]float64(nil), distances...),
		bps:       append([]float64(nil), bps...),
	}, nil
}

// Bps implements ThroughputModel by linear interpolation.
func (t *TableThroughput) Bps(d float64) float64 {
	n := len(t.distances)
	if d <= t.distances[0] {
		return t.bps[0]
	}
	if d >= t.distances[n-1] {
		return t.bps[n-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t.distances[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (d - t.distances[lo]) / (t.distances[hi] - t.distances[lo])
	return t.bps[lo] + frac*(t.bps[hi]-t.bps[lo])
}

// Scenario is one delayed-gratification decision instance.
type Scenario struct {
	// D0M is the distance at which the link becomes available and the
	// batch is ready (metres).
	D0M float64
	// SpeedMPS is the UAV's shipping cruise speed v.
	SpeedMPS float64
	// MdataBytes is the batch size to deliver.
	MdataBytes float64
	// Failure is the exponential-in-distance failure model (rate ρ).
	Failure failure.Model
	// Throughput is the hover-and-transmit law s(d).
	Throughput ThroughputModel
	// MinDistanceM is the anti-collision floor (default MinSeparationM).
	MinDistanceM float64
}

// Validate reports the first implausible field (Eq. 2's constraints:
// v > 0, Mdata > 0, 0 ≤ d ≤ d0).
func (s Scenario) Validate() error {
	switch {
	case s.Throughput == nil:
		return errors.New("core: nil throughput model")
	case s.D0M <= 0:
		return fmt.Errorf("core: d0 %v must be positive", s.D0M)
	case s.SpeedMPS <= 0:
		return fmt.Errorf("core: speed %v must be positive (Eq. 2: v > 0)", s.SpeedMPS)
	case s.MdataBytes <= 0:
		return fmt.Errorf("core: Mdata %v must be positive (Eq. 2: Mdata > 0)", s.MdataBytes)
	case s.MinDistanceM < 0:
		return fmt.Errorf("core: min distance %v must be ≥ 0", s.MinDistanceM)
	}
	return nil
}

// minD returns the effective lower bound of the decision variable.
func (s Scenario) minD() float64 {
	m := s.MinDistanceM
	if m > s.D0M {
		m = s.D0M
	}
	return m
}

// ShipTime is Tship = (d0 − d)/v, the time to move into position d.
func (s Scenario) ShipTime(d float64) float64 {
	if d >= s.D0M {
		return 0
	}
	return (s.D0M - d) / s.SpeedMPS
}

// TxTime is Ttx = Mdata/s(d), the time to transmit the batch at d.
// It is +Inf where the link carries nothing.
func (s Scenario) TxTime(d float64) float64 {
	bps := s.Throughput.Bps(d)
	if bps <= 0 {
		return math.Inf(1)
	}
	return s.MdataBytes * 8 / bps
}

// CommDelay is Cdelay(d) = Tship + Ttx.
func (s Scenario) CommDelay(d float64) float64 {
	return s.ShipTime(d) + s.TxTime(d)
}

// InstantUtility is u(d) = 1/Cdelay(d), the no-failure benefit.
func (s Scenario) InstantUtility(d float64) float64 {
	c := s.CommDelay(d)
	if math.IsInf(c, 1) || c <= 0 {
		return 0
	}
	return 1 / c
}

// Discount is δ(d) = e^{−ρ(d0−d)}.
func (s Scenario) Discount(d float64) float64 {
	return s.Failure.Discount(s.D0M, d)
}

// Utility is U(d) = δ(d)·u(d) (Eq. 1).
func (s Scenario) Utility(d float64) float64 {
	return s.Discount(d) * s.InstantUtility(d)
}

// Optimum is the solution of Eq. 2.
type Optimum struct {
	// DoptM is the distance at which to transmit.
	DoptM float64
	// Utility is U(dopt).
	Utility float64
	// CommDelay is Cdelay(dopt) in seconds.
	CommDelay float64
	// Survival is δ(dopt): the probability of surviving the shipping leg.
	Survival float64
	// TransmitImmediately reports dopt = d0 (no benefit in moving).
	TransmitImmediately bool
}

// gridPoints is the resolution of the coarse search. U(d) is smooth but
// not necessarily concave for large ρ (Section 4), so the coarse pass must
// be dense before golden-section refinement.
const gridPoints = 2048

// Optimize solves Eq. 2: dopt = argmax U(d) over [minD, d0].
func (s Scenario) Optimize() (Optimum, error) {
	if err := s.Validate(); err != nil {
		return Optimum{}, err
	}
	lo, hi := s.minD(), s.D0M
	if hi-lo < 1e-9 {
		return s.optimumAt(hi), nil
	}
	// Coarse grid.
	bestD, bestU := hi, s.Utility(hi)
	step := (hi - lo) / gridPoints
	for i := 0; i <= gridPoints; i++ {
		d := lo + float64(i)*step
		if u := s.Utility(d); u > bestU {
			bestD, bestU = d, u
		}
	}
	// Golden-section refinement in the bracketing neighbourhood.
	a := math.Max(lo, bestD-step)
	b := math.Min(hi, bestD+step)
	d := s.goldenSection(a, b)
	if s.Utility(d) >= bestU {
		bestD = d
	}
	return s.optimumAt(bestD), nil
}

func (s Scenario) optimumAt(d float64) Optimum {
	return Optimum{
		DoptM:               d,
		Utility:             s.Utility(d),
		CommDelay:           s.CommDelay(d),
		Survival:            s.Discount(d),
		TransmitImmediately: math.Abs(d-s.D0M) < 1e-6,
	}
}

// goldenSection maximizes U on [a, b] assuming local unimodality.
func (s Scenario) goldenSection(a, b float64) float64 {
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := s.Utility(x1), s.Utility(x2)
	for i := 0; i < 80 && b-a > 1e-9; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = s.Utility(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = s.Utility(x1)
		}
	}
	return (a + b) / 2
}

// Point is one sample of the utility curve.
type Point struct {
	DM        float64
	Utility   float64
	CommDelay float64
	Discount  float64
}

// UtilityCurve samples U(d) over [minD, d0] at n points (n ≥ 2), the raw
// material of Figs 8 and 9.
func (s Scenario) UtilityCurve(n int) ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, errors.New("core: need at least 2 curve points")
	}
	lo, hi := s.minD(), s.D0M
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		d := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{
			DM:        d,
			Utility:   s.Utility(d),
			CommDelay: s.CommDelay(d),
			Discount:  s.Discount(d),
		}
	}
	return pts, nil
}

// AirplaneBaseline is the paper's airplane scenario (Section 4):
// Mdata = 28 MB, v = 10 m/s, ρ = 1.11e−4 m⁻¹, d0 = 300 m, with the
// airplane throughput fit. The Mdata value is re-derived from the mission
// sensing model to keep the constants honest.
func AirplaneBaseline() Scenario {
	m, _ := failure.NewModel(failure.AirplaneRho)
	return Scenario{
		D0M:          300,
		SpeedMPS:     10,
		MdataBytes:   mission.AirplanePlan().DataBytes(), // ≈28 MB
		Failure:      m,
		Throughput:   AirplaneFit(),
		MinDistanceM: MinSeparationM,
	}
}

// QuadrocopterBaseline is the paper's quadrocopter scenario (Section 4):
// Mdata = 56.2 MB, v = 4.5 m/s, ρ = 2.46e−4 m⁻¹, d0 = 100 m.
func QuadrocopterBaseline() Scenario {
	m, _ := failure.NewModel(failure.QuadrocopterRho)
	return Scenario{
		D0M:          100,
		SpeedMPS:     4.5,
		MdataBytes:   mission.QuadrocopterPlan().DataBytes(), // ≈56.2 MB
		Failure:      m,
		Throughput:   QuadrocopterFit(),
		MinDistanceM: MinSeparationM,
	}
}
