package core

import (
	"errors"
	"fmt"
	"math"
)

// Strategy identifies one of the delivery strategies the paper compares
// (Figs 1 and 2).
type Strategy int

// The strategies of Fig. 1.
const (
	// TransmitNow: hover and transmit at d0 immediately.
	TransmitNow Strategy = iota
	// ShipThenTransmit: fly silently to a chosen distance, then hover and
	// transmit ("hover and transmit" after shipping).
	ShipThenTransmit
	// MoveAndTransmit: transmit continuously while closing in (the paper
	// shows this is outperformed because motion degrades the channel).
	MoveAndTransmit
)

// String names the strategy.
func (st Strategy) String() string {
	switch st {
	case TransmitNow:
		return "transmit-now"
	case ShipThenTransmit:
		return "ship-then-transmit"
	case MoveAndTransmit:
		return "move-and-transmit"
	default:
		return fmt.Sprintf("Strategy(%d)", int(st))
	}
}

// SpeedPenalty scales hover throughput by the relative speed of the
// endpoints, abstracting Fig. 7 (right): the default halves throughput
// every HalvingSpeedMPS of relative speed.
type SpeedPenalty struct {
	HalvingSpeedMPS float64
}

// DefaultSpeedPenalty reflects the Fig. 1 "moving" realization rather than
// the kinder Fig. 7 medians: transmitting on the move at the quads' ≈8 m/s
// approach speed delivered roughly a quarter of the hovering rate, so the
// default halves throughput every 4 m/s. (The Fig. 7 boxplot medians
// correspond to a halving speed nearer 6–7 m/s; use a custom SpeedPenalty
// to explore that regime.)
func DefaultSpeedPenalty() SpeedPenalty { return SpeedPenalty{HalvingSpeedMPS: 4} }

// Factor returns the multiplicative throughput penalty at speed v.
func (p SpeedPenalty) Factor(v float64) float64 {
	if v <= 0 {
		return 1
	}
	h := p.HalvingSpeedMPS
	if h <= 0 {
		h = 8
	}
	return math.Pow(2, -v/h)
}

// SeriesPoint is one sample of a delivery time series (Fig. 1's axes).
type SeriesPoint struct {
	TimeS       float64
	DeliveredMB float64
	DistanceM   float64
}

// Outcome summarizes one strategy run.
type Outcome struct {
	Strategy Strategy
	// TargetDM is the transmit distance (ShipThenTransmit only).
	TargetDM float64
	// CompletionS is the time to deliver all of Mdata (+Inf if the link
	// cannot finish, e.g. fit throughput hits zero).
	CompletionS float64
	// Series samples delivered data over time.
	Series []SeriesPoint
}

// seriesStep is the reporting interval of strategy time series.
const seriesStep = 0.1

// maxSimulatedS caps strategy runs so a dead link cannot loop forever.
const maxSimulatedS = 24 * 3600

// RunStrategy produces the delivery time series of a strategy under the
// scenario's analytic throughput model. For ShipThenTransmit, target is
// the transmit distance (clamped to [minD, d0]); other strategies ignore
// it. MoveAndTransmit uses the speed penalty to degrade throughput while
// the UAV closes in, then finishes the residual at the minimum distance.
func (s Scenario) RunStrategy(st Strategy, target float64, pen SpeedPenalty) (Outcome, error) {
	if err := s.Validate(); err != nil {
		return Outcome{}, err
	}
	switch st {
	case TransmitNow:
		return s.runHoverAt(st, s.D0M), nil
	case ShipThenTransmit:
		d := math.Max(s.minD(), math.Min(target, s.D0M))
		return s.runHoverAt(st, d), nil
	case MoveAndTransmit:
		return s.runMoveAndTransmit(pen), nil
	default:
		return Outcome{}, errors.New("core: unknown strategy")
	}
}

// runHoverAt ships silently to d (no delivery during shipping) and then
// transmits at the hover rate s(d).
func (s Scenario) runHoverAt(st Strategy, d float64) Outcome {
	out := Outcome{Strategy: st, TargetDM: d}
	ship := s.ShipTime(d)
	bps := s.Throughput.Bps(d)
	totalMB := s.MdataBytes / 1e6

	t := 0.0
	out.Series = append(out.Series, SeriesPoint{TimeS: 0, DeliveredMB: 0, DistanceM: s.D0M})
	for t < ship {
		t = math.Min(t+seriesStep, ship)
		dist := s.D0M - s.SpeedMPS*t
		out.Series = append(out.Series, SeriesPoint{TimeS: t, DeliveredMB: 0, DistanceM: dist})
	}
	if bps <= 0 {
		out.CompletionS = math.Inf(1)
		return out
	}
	txTime := s.MdataBytes * 8 / bps
	end := ship + txTime
	for t < end && t < maxSimulatedS {
		t = math.Min(t+seriesStep, end)
		mb := math.Min(totalMB, (t-ship)*bps/8/1e6)
		out.Series = append(out.Series, SeriesPoint{TimeS: t, DeliveredMB: mb, DistanceM: d})
	}
	out.CompletionS = end
	return out
}

// runMoveAndTransmit integrates delivery while the UAV closes from d0 to
// the minimum separation with throughput s(d(t))·penalty(v). On arrival it
// keeps loitering in motion (a quadrocopter cannot park at the separation
// floor and a fixed wing cannot stop at all), so the speed penalty
// persists for any residual data — this is what makes the strategy lose in
// Fig. 1. A genuinely mixed move-then-hover strategy is ShipThenTransmit
// with a transmit-while-shipping extension, which the paper explicitly
// leaves out of scope (Section 2.2).
func (s Scenario) runMoveAndTransmit(pen SpeedPenalty) Outcome {
	out := Outcome{Strategy: MoveAndTransmit, TargetDM: s.minD()}
	factor := pen.Factor(s.SpeedMPS)
	remaining := s.MdataBytes * 8 // bits
	totalBits := remaining
	t, d := 0.0, s.D0M
	out.Series = append(out.Series, SeriesPoint{TimeS: 0, DeliveredMB: 0, DistanceM: d})
	const dt = 0.05
	for remaining > 0 && t < maxSimulatedS {
		bps := s.Throughput.Bps(d) * factor
		remaining -= bps * dt
		if remaining < 0 {
			remaining = 0
		}
		if d > s.minD() {
			d = math.Max(s.minD(), d-s.SpeedMPS*dt)
		} else if bps <= 0 {
			// Loitering at minimum separation with a dead link.
			out.CompletionS = math.Inf(1)
			return out
		}
		t += dt
		if int(t/dt)%2 == 0 || remaining == 0 {
			out.Series = append(out.Series, SeriesPoint{
				TimeS:       t,
				DeliveredMB: (totalBits - remaining) / 8 / 1e6,
				DistanceM:   d,
			})
		}
	}
	if remaining > 0 {
		out.CompletionS = math.Inf(1)
	} else {
		out.CompletionS = t
	}
	return out
}

// CrossoverMB finds the data size at which shipping to distance d and
// transmitting starts beating transmitting immediately at d0 — the
// "≈15 MB" crossover of Fig. 1. It returns the Mdata (in bytes) where the
// two completion times are equal: ship wins for larger batches. Returns
// +Inf when shipping never wins (e.g. s(d) ≤ s(d0)).
func (s Scenario) CrossoverMB(d float64) float64 {
	d = math.Max(s.minD(), math.Min(d, s.D0M))
	sNow := s.Throughput.Bps(s.D0M)
	sThere := s.Throughput.Bps(d)
	if sThere <= sNow || sNow <= 0 {
		if sThere > 0 && sNow <= 0 {
			return 0 // transmitting at d0 is impossible: any batch ships
		}
		return math.Inf(1)
	}
	// Mdata·8/sNow = Tship + Mdata·8/sThere  ⇒
	// Mdata = Tship / (8·(1/sNow − 1/sThere))
	ship := s.ShipTime(d)
	return ship / (8 * (1/sNow - 1/sThere))
}
