package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// LoadTableThroughputCSV reads a measured throughput table from CSV with
// columns "distance_m,throughput_mbps" (a header row is detected and
// skipped; extra columns are ignored). Rows are sorted by distance. This is
// the bridge from `cmd/linkprobe` measurements — or anyone's field data —
// into the optimizer.
func LoadTableThroughputCSV(r io.Reader) (*TableThroughput, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("core: reading throughput csv: %w", err)
	}
	type row struct{ d, mbps float64 }
	var rows []row
	for i, rec := range records {
		if len(rec) < 2 {
			return nil, fmt.Errorf("core: row %d has %d columns, need 2", i+1, len(rec))
		}
		d, err1 := strconv.ParseFloat(rec[0], 64)
		mbps, err2 := strconv.ParseFloat(rec[1], 64)
		if err1 != nil || err2 != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("core: row %d is not numeric: %v", i+1, rec)
		}
		rows = append(rows, row{d, mbps})
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("core: need at least two data rows, got %d", len(rows))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d < rows[j].d })
	ds := make([]float64, len(rows))
	bps := make([]float64, len(rows))
	for i, r := range rows {
		ds[i] = r.d
		bps[i] = r.mbps * 1e6
	}
	return NewTableThroughput(ds, bps)
}

// WriteTableThroughputCSV writes a (distance, Mb/s) table in the format
// LoadTableThroughputCSV reads.
func WriteTableThroughputCSV(w io.Writer, distances, mbps []float64) error {
	if len(distances) != len(mbps) {
		return fmt.Errorf("core: mismatched lengths %d vs %d", len(distances), len(mbps))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"distance_m", "throughput_mbps"}); err != nil {
		return err
	}
	for i := range distances {
		if err := cw.Write([]string{
			strconv.FormatFloat(distances[i], 'g', -1, 64),
			strconv.FormatFloat(mbps[i], 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
