package core

import (
	"math"
	"testing"

	"github.com/nowlater/nowlater/internal/failure"
)

// fig1Scenario is the Fig. 1 setting: two quadrocopters 80 m apart with a
// 20 MB batch.
func fig1Scenario() Scenario {
	m, _ := failure.NewModel(failure.QuadrocopterRho)
	return Scenario{
		D0M:          80,
		SpeedMPS:     4.5,
		MdataBytes:   20e6,
		Failure:      m,
		Throughput:   QuadrocopterFit(),
		MinDistanceM: MinSeparationM,
	}
}

func TestStrategyStrings(t *testing.T) {
	if TransmitNow.String() != "transmit-now" ||
		ShipThenTransmit.String() != "ship-then-transmit" ||
		MoveAndTransmit.String() != "move-and-transmit" {
		t.Fatal("strategy names changed")
	}
}

func TestSpeedPenalty(t *testing.T) {
	p := DefaultSpeedPenalty()
	if p.Factor(0) != 1 {
		t.Fatal("hover penalty must be 1")
	}
	if got := p.Factor(4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("penalty at 4 m/s = %v, want 0.5", got)
	}
	if got := p.Factor(8); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("penalty at 8 m/s = %v, want 0.25", got)
	}
	// Zero halving speed falls back to 8 m/s rather than dividing by zero.
	if got := (SpeedPenalty{}).Factor(8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fallback penalty = %v", got)
	}
}

func TestTransmitNowCompletion(t *testing.T) {
	sc := fig1Scenario()
	out, err := sc.RunStrategy(TransmitNow, 0, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	want := sc.MdataBytes * 8 / sc.Throughput.Bps(sc.D0M)
	if math.Abs(out.CompletionS-want) > 0.2 {
		t.Fatalf("completion = %v, want ≈%v", out.CompletionS, want)
	}
	// Delivery starts immediately (no shipping).
	if len(out.Series) < 2 || out.Series[1].DeliveredMB <= 0 {
		t.Fatal("transmit-now should deliver from t=0")
	}
}

func TestShipThenTransmitSeriesShape(t *testing.T) {
	sc := fig1Scenario()
	out, err := sc.RunStrategy(ShipThenTransmit, 60, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	ship := sc.ShipTime(60)
	// Nothing delivered during shipping; everything after.
	for _, p := range out.Series {
		if p.TimeS < ship-1e-9 && p.DeliveredMB != 0 {
			t.Fatalf("delivered %v MB during shipping at t=%v", p.DeliveredMB, p.TimeS)
		}
	}
	last := out.Series[len(out.Series)-1]
	if math.Abs(last.DeliveredMB-20) > 0.01 {
		t.Fatalf("final delivered = %v MB", last.DeliveredMB)
	}
	if math.Abs(out.CompletionS-sc.CommDelay(60)) > 0.2 {
		t.Fatalf("completion %v vs Cdelay %v", out.CompletionS, sc.CommDelay(60))
	}
	// Target clamped to feasible range.
	out2, _ := sc.RunStrategy(ShipThenTransmit, 5, DefaultSpeedPenalty())
	if out2.TargetDM != MinSeparationM {
		t.Fatalf("target not clamped: %v", out2.TargetDM)
	}
}

// TestFig1Ordering reproduces Fig. 1's qualitative result with the paper's
// fitted throughput: for a 20 MB batch, shipping to 60 m beats
// transmitting at 80 m, and 'move and transmit' is the worst strategy.
func TestFig1Ordering(t *testing.T) {
	sc := fig1Scenario()
	now, err := sc.RunStrategy(TransmitNow, 0, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	ship60, err := sc.RunStrategy(ShipThenTransmit, 60, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's moving tests approached at ≈8 m/s (Section 3.2).
	scMove := sc
	scMove.SpeedMPS = 8
	moving, err := scMove.RunStrategy(MoveAndTransmit, 0, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	if ship60.CompletionS >= now.CompletionS {
		t.Fatalf("ship-to-60 (%v s) should beat transmit-now (%v s) for 20 MB",
			ship60.CompletionS, now.CompletionS)
	}
	if moving.CompletionS <= ship60.CompletionS {
		t.Fatalf("move-and-transmit (%v s) should lose to ship-then-transmit (%v s)",
			moving.CompletionS, ship60.CompletionS)
	}
}

// TestFig1Crossover: the d=60 strategy overtakes d=80 only beyond a batch
// size in the ~neighbourhood of the paper's ≈15 MB observation.
func TestFig1Crossover(t *testing.T) {
	sc := fig1Scenario()
	cross := sc.CrossoverMB(60) / 1e6
	if cross < 3 || cross > 25 {
		t.Fatalf("crossover = %.1f MB, want within [3, 25] (paper ≈15 MB)", cross)
	}
	// Below the crossover transmit-now wins; above, shipping wins.
	below := sc
	below.MdataBytes = cross * 1e6 * 0.5
	if below.CommDelay(60) <= below.CommDelay(80) {
		t.Fatal("below crossover shipping should lose")
	}
	above := sc
	above.MdataBytes = cross * 1e6 * 2
	if above.CommDelay(60) >= above.CommDelay(80) {
		t.Fatal("above crossover shipping should win")
	}
}

func TestCrossoverEdgeCases(t *testing.T) {
	sc := fig1Scenario()
	// Flat throughput: shipping never wins.
	flat, err := NewTableThroughput([]float64{10, 400}, []float64{5e6, 5e6})
	if err != nil {
		t.Fatal(err)
	}
	sc2 := sc
	sc2.Throughput = flat
	if !math.IsInf(sc2.CrossoverMB(40), 1) {
		t.Fatal("flat throughput should have no crossover")
	}
	// Dead link at d0: any batch justifies shipping.
	dead, err := NewTableThroughput([]float64{10, 60, 80}, []float64{10e6, 1e6, 0})
	if err != nil {
		t.Fatal(err)
	}
	sc3 := sc
	sc3.Throughput = dead
	if got := sc3.CrossoverMB(40); got != 0 {
		t.Fatalf("dead-at-d0 crossover = %v, want 0", got)
	}
}

func TestMoveAndTransmitDeliversEverything(t *testing.T) {
	sc := fig1Scenario()
	out, err := sc.RunStrategy(MoveAndTransmit, 0, DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	last := out.Series[len(out.Series)-1]
	if math.Abs(last.DeliveredMB-20) > 0.05 {
		t.Fatalf("delivered %v MB", last.DeliveredMB)
	}
	if math.IsInf(out.CompletionS, 1) {
		t.Fatal("completion infinite")
	}
	// Distance decreases monotonically to the floor.
	prev := math.Inf(1)
	for _, p := range out.Series {
		if p.DistanceM > prev+1e-9 {
			t.Fatal("distance increased while closing in")
		}
		prev = p.DistanceM
	}
	if last.DistanceM < MinSeparationM-1e-9 {
		t.Fatalf("closed past the minimum separation: %v", last.DistanceM)
	}
}

func TestSeriesMonotonicity(t *testing.T) {
	sc := fig1Scenario()
	for _, st := range []Strategy{TransmitNow, ShipThenTransmit, MoveAndTransmit} {
		out, err := sc.RunStrategy(st, 40, DefaultSpeedPenalty())
		if err != nil {
			t.Fatal(err)
		}
		prevT, prevMB := -1.0, -1.0
		for _, p := range out.Series {
			if p.TimeS < prevT || p.DeliveredMB < prevMB-1e-9 {
				t.Fatalf("%v: series not monotone at t=%v", st, p.TimeS)
			}
			prevT, prevMB = p.TimeS, p.DeliveredMB
		}
	}
}

func TestRunStrategyValidation(t *testing.T) {
	sc := fig1Scenario()
	sc.MdataBytes = 0
	if _, err := sc.RunStrategy(TransmitNow, 0, DefaultSpeedPenalty()); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	sc = fig1Scenario()
	if _, err := sc.RunStrategy(Strategy(99), 0, DefaultSpeedPenalty()); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestDeadLinkStrategiesReportInfinity(t *testing.T) {
	dead, err := NewTableThroughput([]float64{10, 500}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := failure.NewModel(0)
	sc := Scenario{
		D0M: 100, SpeedMPS: 5, MdataBytes: 1e6,
		Failure: m, Throughput: dead, MinDistanceM: 20,
	}
	for _, st := range []Strategy{TransmitNow, ShipThenTransmit, MoveAndTransmit} {
		out, err := sc.RunStrategy(st, 50, DefaultSpeedPenalty())
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(out.CompletionS, 1) {
			t.Fatalf("%v on dead link completed in %v", st, out.CompletionS)
		}
	}
}
