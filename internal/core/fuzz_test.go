package core

import (
	"math"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/failure"
)

// FuzzLoadTableThroughputCSV: arbitrary input must either parse into a
// valid interpolator or fail cleanly — never panic, never produce NaN.
func FuzzLoadTableThroughputCSV(f *testing.F) {
	f.Add("distance_m,throughput_mbps\n20,25\n80,6\n")
	f.Add("20,25\n80,6\n")
	f.Add("")
	f.Add("a,b\nc,d\n")
	f.Add("20,25\n20,26\n")
	f.Add("1e309,5\n2,6\n")
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := LoadTableThroughputCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, d := range []float64{0, 1, 50, 1e6} {
			v := tab.Bps(d)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("Bps(%v) = %v from input %q", d, v, in)
			}
		}
	})
}

// FuzzScenarioUtility: any feasible scenario evaluates to finite,
// non-negative utility everywhere, and the optimizer never errors or
// leaves the feasible region.
func FuzzScenarioUtility(f *testing.F) {
	f.Add(300.0, 10.0, 28.0, 1.11e-4)
	f.Add(100.0, 4.5, 56.2, 2.46e-4)
	f.Add(21.0, 0.5, 0.1, 0.0)
	f.Fuzz(func(t *testing.T, d0, v, mdataMB, rho float64) {
		if !(d0 > 20 && d0 < 1e4) || !(v > 0.1 && v < 50) ||
			!(mdataMB > 0.01 && mdataMB < 1e3) || !(rho >= 0 && rho < 1) {
			return
		}
		m, err := failure.NewModel(rho)
		if err != nil {
			return
		}
		sc := Scenario{
			D0M: d0, SpeedMPS: v, MdataBytes: mdataMB * 1e6,
			Failure: m, Throughput: AirplaneFit(), MinDistanceM: MinSeparationM,
		}
		opt, err := sc.Optimize()
		if err != nil {
			t.Fatalf("optimize failed: %v", err)
		}
		if math.IsNaN(opt.Utility) || opt.Utility < 0 {
			t.Fatalf("utility = %v", opt.Utility)
		}
		if opt.DoptM < sc.minD()-1e-9 || opt.DoptM > d0+1e-9 {
			t.Fatalf("dopt %v outside [%v, %v]", opt.DoptM, sc.minD(), d0)
		}
	})
}
