package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nowlater/nowlater/internal/failure"
)

func TestLogFitThroughputValues(t *testing.T) {
	air := AirplaneFit()
	// s(20) = 10⁶·(49 − 5.56·log2 20) ≈ 24.97 Mb/s.
	if got := air.Bps(20) / 1e6; math.Abs(got-24.97) > 0.05 {
		t.Fatalf("airplane s(20) = %v Mb/s", got)
	}
	// The fit crosses zero near d ≈ 450 m; beyond it must clamp at 0.
	if got := air.Bps(1000); got != 0 {
		t.Fatalf("airplane s(1000) = %v, want 0", got)
	}
	// Distances below 1 m clamp to d = 1.
	if air.Bps(0.1) != air.Bps(1) {
		t.Fatal("sub-metre distances should clamp")
	}
	quad := QuadrocopterFit()
	if got := quad.Bps(80) / 1e6; math.Abs(got-6.62) > 0.05 {
		t.Fatalf("quad s(80) = %v Mb/s", got)
	}
}

func TestTableThroughput(t *testing.T) {
	tab, err := NewTableThroughput([]float64{20, 40, 80}, []float64{20e6, 10e6, 5e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Bps(20); got != 20e6 {
		t.Fatalf("exact point = %v", got)
	}
	if got := tab.Bps(30); got != 15e6 {
		t.Fatalf("interpolation = %v", got)
	}
	if got := tab.Bps(5); got != 20e6 {
		t.Fatalf("left clamp = %v", got)
	}
	if got := tab.Bps(500); got != 5e6 {
		t.Fatalf("right clamp = %v", got)
	}
	if _, err := NewTableThroughput([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := NewTableThroughput([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing distances accepted")
	}
	if _, err := NewTableThroughput([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Fatal("negative throughput accepted")
	}
	if _, err := NewTableThroughput([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := AirplaneBaseline().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Scenario){
		func(s *Scenario) { s.Throughput = nil },
		func(s *Scenario) { s.D0M = 0 },
		func(s *Scenario) { s.SpeedMPS = 0 },
		func(s *Scenario) { s.MdataBytes = 0 },
		func(s *Scenario) { s.MinDistanceM = -1 },
	}
	for i, mutate := range bad {
		sc := AirplaneBaseline()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPaperBaselineConstants(t *testing.T) {
	air := AirplaneBaseline()
	if air.D0M != 300 || air.SpeedMPS != 10 || air.Failure.Rho != 1.11e-4 {
		t.Fatalf("airplane baseline diverges: %+v", air)
	}
	if math.Abs(air.MdataBytes-28e6)/28e6 > 0.03 {
		t.Fatalf("airplane Mdata = %v, want ≈28 MB", air.MdataBytes)
	}
	quad := QuadrocopterBaseline()
	if quad.D0M != 100 || quad.SpeedMPS != 4.5 || quad.Failure.Rho != 2.46e-4 {
		t.Fatalf("quad baseline diverges: %+v", quad)
	}
	if math.Abs(quad.MdataBytes-56.2e6)/56.2e6 > 0.03 {
		t.Fatalf("quad Mdata = %v, want ≈56.2 MB", quad.MdataBytes)
	}
}

func TestDelayDecomposition(t *testing.T) {
	s := AirplaneBaseline()
	// Tship = (300 − 100)/10 = 20 s.
	if got := s.ShipTime(100); math.Abs(got-20) > 1e-12 {
		t.Fatalf("Tship(100) = %v", got)
	}
	if got := s.ShipTime(300); got != 0 {
		t.Fatalf("Tship(d0) = %v", got)
	}
	// Ttx(100) = 28 MB·8 / s(100).
	want := s.MdataBytes * 8 / AirplaneFit().Bps(100)
	if got := s.TxTime(100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Ttx(100) = %v, want %v", got, want)
	}
	if got := s.CommDelay(100); math.Abs(got-(20+want)) > 1e-9 {
		t.Fatalf("Cdelay(100) = %v", got)
	}
	// Dead link → infinite delay, zero utility.
	if !math.IsInf(s.TxTime(1000), 1) {
		t.Fatal("dead link Ttx should be +Inf")
	}
}

func TestUtilityFormula(t *testing.T) {
	s := AirplaneBaseline()
	d := 150.0
	want := math.Exp(-s.Failure.Rho*(s.D0M-d)) / s.CommDelay(d)
	if got := s.Utility(d); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("U(%v) = %v, want %v", d, got, want)
	}
	// Discount at d0 is exactly 1 (no travel, no risk).
	if s.Discount(s.D0M) != 1 {
		t.Fatal("δ(d0) != 1")
	}
}

func TestOptimizeBaselines(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"airplane", AirplaneBaseline()},
		{"quadrocopter", QuadrocopterBaseline()},
	} {
		opt, err := tc.sc.Optimize()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if opt.DoptM < tc.sc.MinDistanceM-1e-9 || opt.DoptM > tc.sc.D0M+1e-9 {
			t.Fatalf("%s: dopt %v outside feasible range", tc.name, opt.DoptM)
		}
		// The optimum beats both extremes (or equals one of them).
		if opt.Utility+1e-15 < tc.sc.Utility(tc.sc.D0M) {
			t.Fatalf("%s: optimum worse than transmitting now", tc.name)
		}
		if opt.Utility+1e-15 < tc.sc.Utility(tc.sc.MinDistanceM) {
			t.Fatalf("%s: optimum worse than closing fully", tc.name)
		}
		if opt.Survival <= 0 || opt.Survival > 1 {
			t.Fatalf("%s: survival %v", tc.name, opt.Survival)
		}
		t.Logf("%s: dopt = %.1f m, U = %.4f, Cdelay = %.1f s", tc.name, opt.DoptM, opt.Utility, opt.CommDelay)
	}
}

// TestDoptIncreasesWithRho is Fig 8's central observation: "the optimal
// distance dopt of Eq. (1) increases with the failure rate ρ".
func TestDoptIncreasesWithRho(t *testing.T) {
	for _, base := range []Scenario{AirplaneBaseline(), QuadrocopterBaseline()} {
		prev := -1.0
		for _, rho := range []float64{0.0001, 0.001, 0.002, 0.005, 0.01} {
			sc := base
			m, err := failure.NewModel(rho)
			if err != nil {
				t.Fatal(err)
			}
			sc.Failure = m
			opt, err := sc.Optimize()
			if err != nil {
				t.Fatal(err)
			}
			if opt.DoptM < prev-1 { // allow 1 m numerical slack
				t.Fatalf("dopt decreased with rho: %v m at ρ=%v (prev %v)", opt.DoptM, rho, prev)
			}
			prev = opt.DoptM
		}
		// At a brutal failure rate the UAV transmits (almost) immediately.
		sc := base
		m, _ := failure.NewModel(0.05)
		sc.Failure = m
		opt, _ := sc.Optimize()
		if opt.DoptM < base.D0M*0.95 {
			t.Fatalf("at ρ=0.05 dopt = %v, want ≈ d0 = %v", opt.DoptM, base.D0M)
		}
	}
}

// TestSmallD0TransmitsImmediately is the paper's observation that "once
// d0 = dopt, it becomes beneficial to transmit immediately".
func TestSmallD0TransmitsImmediately(t *testing.T) {
	sc := QuadrocopterBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	// Shrink d0 to the previous optimum: the new optimum is to stay put.
	sc2 := sc
	sc2.D0M = opt.DoptM
	opt2, err := sc2.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !opt2.TransmitImmediately {
		t.Fatalf("d0 = dopt should transmit immediately, got dopt = %v of d0 = %v", opt2.DoptM, sc2.D0M)
	}
}

// TestFig9Relations verifies the parameter-sweep relations of Fig. 9:
// larger Mdata ⇒ move closer (smaller dopt) and lower peak utility;
// higher speed ⇒ move closer for a fixed Mdata.
func TestFig9Relations(t *testing.T) {
	base := AirplaneBaseline()

	// Mdata sweep at fixed speed.
	prevD, prevU := math.Inf(1), math.Inf(1)
	for _, mb := range []float64{5, 10, 15, 25, 45} {
		sc := base
		sc.MdataBytes = mb * 1e6
		opt, err := sc.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if opt.DoptM > prevD+1 {
			t.Fatalf("dopt should shrink with Mdata: %v MB → %v m (prev %v)", mb, opt.DoptM, prevD)
		}
		if opt.Utility > prevU+1e-12 {
			t.Fatalf("peak utility should fall with Mdata: %v MB → %v", mb, opt.Utility)
		}
		prevD, prevU = opt.DoptM, opt.Utility
	}

	// Speed sweep at fixed Mdata = 15 MB.
	prevD = math.Inf(1)
	for _, v := range []float64{3, 5, 10, 15, 20} {
		sc := base
		sc.MdataBytes = 15e6
		sc.SpeedMPS = v
		opt, err := sc.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if opt.DoptM > prevD+1 {
			t.Fatalf("dopt should shrink with speed: %v m/s → %v m (prev %v)", v, opt.DoptM, prevD)
		}
		prevD = opt.DoptM
	}

	// Large batches at high speed pin dopt to the minimum distance.
	sc := base
	sc.MdataBytes = 45e6
	sc.SpeedMPS = 20
	opt, _ := sc.Optimize()
	if opt.DoptM > MinSeparationM+2 {
		t.Fatalf("45 MB at 20 m/s should close to the minimum: dopt = %v", opt.DoptM)
	}
}

func TestUtilityCurve(t *testing.T) {
	sc := QuadrocopterBaseline()
	pts, err := sc.UtilityCurve(101)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 101 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].DM != MinSeparationM || math.Abs(pts[100].DM-sc.D0M) > 1e-9 {
		t.Fatalf("curve range [%v, %v]", pts[0].DM, pts[100].DM)
	}
	// Curve values agree with direct evaluation.
	for _, p := range pts {
		if math.Abs(p.Utility-sc.Utility(p.DM)) > 1e-15 {
			t.Fatalf("curve mismatch at %v", p.DM)
		}
	}
	if _, err := sc.UtilityCurve(1); err == nil {
		t.Fatal("n=1 accepted")
	}
}

// Property: the optimizer never loses to a brute-force scan.
func TestOptimizerMatchesBruteForceProperty(t *testing.T) {
	f := func(mbRaw, vRaw, rhoRaw, d0Raw uint8) bool {
		sc := Scenario{
			D0M:          60 + float64(d0Raw),
			SpeedMPS:     1 + float64(vRaw%20),
			MdataBytes:   (1 + float64(mbRaw%45)) * 1e6,
			Throughput:   AirplaneFit(),
			MinDistanceM: MinSeparationM,
		}
		m, err := failure.NewModel(float64(rhoRaw) * 1e-4)
		if err != nil {
			return false
		}
		sc.Failure = m
		opt, err := sc.Optimize()
		if err != nil {
			return false
		}
		best := 0.0
		for d := sc.MinDistanceM; d <= sc.D0M; d += 0.25 {
			if u := sc.Utility(d); u > best {
				best = u
			}
		}
		return opt.Utility >= best-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
