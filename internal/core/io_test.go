package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadTableThroughputCSV(t *testing.T) {
	in := "distance_m,throughput_mbps\n20,25.5\n80,6.6\n40,17.1\n"
	tab, err := LoadTableThroughputCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Bps(20); got != 25.5e6 {
		t.Fatalf("Bps(20) = %v", got)
	}
	// Rows were sorted: interpolation between 40 and 80 works.
	if got := tab.Bps(60); got <= 6.6e6 || got >= 17.1e6 {
		t.Fatalf("Bps(60) = %v", got)
	}
}

func TestLoadTableThroughputCSVWithoutHeader(t *testing.T) {
	tab, err := LoadTableThroughputCSV(strings.NewReader("20,25.5\n80,6.6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Bps(80) != 6.6e6 {
		t.Fatal("headerless csv mis-parsed")
	}
}

func TestLoadTableThroughputCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"distance_m,mbps\n20,5", // single data row
		"20\n40\n",              // too few columns
		"20,5\nforty,6\n",       // non-numeric data row
	}
	for i, in := range cases {
		if _, err := LoadTableThroughputCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestWriteThenLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ds := []float64{20, 40, 80}
	mbps := []float64{25.5, 17.1, 6.6}
	if err := WriteTableThroughputCSV(&buf, ds, mbps); err != nil {
		t.Fatal(err)
	}
	tab, err := LoadTableThroughputCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if got := tab.Bps(d); got != mbps[i]*1e6 {
			t.Fatalf("round trip at %v: %v", d, got)
		}
	}
	if err := WriteTableThroughputCSV(&buf, ds, mbps[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// The loaded table plugs straight into the optimizer.
func TestLoadedTableDrivesOptimizer(t *testing.T) {
	in := "20,25.5\n40,17.1\n60,11.0\n80,6.6\n100,3.5\n"
	tab, err := LoadTableThroughputCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sc := QuadrocopterBaseline()
	sc.Throughput = tab
	opt, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM < sc.MinDistanceM || opt.DoptM > sc.D0M {
		t.Fatalf("dopt = %v", opt.DoptM)
	}
}
