package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFileAtomicFailureLeavesOldContent pins the atomicity contract:
// a render that fails partway (an interrupted run) must leave the previous
// file byte-intact and no temp debris in the directory.
func TestWriteFileAtomicFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.csv")
	if err := WriteFileAtomicBytes(path, []byte("old,complete,content\n")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("interrupted mid-render")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// Partial bytes hit the temp file before the failure, as a crash
		// mid-render would leave them.
		io.WriteString(w, "new,partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want render error", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old,complete,content\n" {
		t.Errorf("old content clobbered: %q", data)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicFailureOnFreshPathLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.svg")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "<svg")
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("render error swallowed")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed write materialized the target: %v", err)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileAtomicReplacesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.txt")
	for _, content := range []string{"first\n", "second, longer content\n", "3\n"} {
		if err := WriteFileAtomicBytes(path, []byte(content)); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != content {
			t.Errorf("got %q, want %q", data, content)
		}
	}
	assertNoTempFiles(t, filepath.Join(dir, "sub"))
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}
