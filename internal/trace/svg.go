package trace

// SVG rendering: real vector figures for the regenerated plots, written
// next to the CSV series. Pure stdlib (the figures are just strings), sized
// for inclusion in a paper or README.

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette holds distinguishable series colours.
var svgPalette = []string{
	"#1b6ca8", "#d1495b", "#2e933c", "#e7a917", "#7c4fbd", "#13889b", "#6b4226", "#61656b",
}

const (
	svgW, svgH             = 640, 420
	svgMarginL, svgMarginR = 64, 16
	svgMarginT, svgMarginB = 40, 56
)

// SVGLinePlot renders series as an SVG line chart with axes, ticks and a
// legend.
func SVGLinePlot(title, xLabel, yLabel string, series []Series) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	svgHeader(&b, title)
	if minX > maxX {
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="lbl">(no data)</text>`, svgW/2, svgH/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom.
	maxY += (maxY - minY) * 0.05
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	px := func(x float64) float64 { return float64(svgMarginL) + plotW*(x-minX)/(maxX-minX) }
	py := func(y float64) float64 { return float64(svgMarginT) + plotH*(1-(y-minY)/(maxY-minY)) }

	svgAxes(&b, xLabel, yLabel, minX, maxX, minY, maxY, px, py)

	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(pts, " "), color)
			b.WriteString("\n")
		}
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.2" fill="%s"/>`, xy[0], xy[1], color)
		}
		b.WriteString("\n")
		// Legend entry.
		ly := svgMarginT + 6 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, svgW-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="lbl">%s</text>`, svgW-136, ly+9, svgEscape(s.Name))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SVGBoxPlot renders labelled boxplot columns.
func SVGBoxPlot(title, xLabel, yLabel string, cols []BoxColumn) string {
	var b strings.Builder
	svgHeader(&b, title)
	if len(cols) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="lbl">(no data)</text>`, svgW/2, svgH/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cols {
		lo = math.Min(lo, c.Box.Min)
		hi = math.Max(hi, c.Box.Max)
	}
	if hi == lo {
		hi = lo + 1
	}
	hi += (hi - lo) * 0.05
	plotW := float64(svgW - svgMarginL - svgMarginR)
	plotH := float64(svgH - svgMarginT - svgMarginB)
	py := func(y float64) float64 { return float64(svgMarginT) + plotH*(1-(y-lo)/(hi-lo)) }
	slot := plotW / float64(len(cols))
	boxW := math.Min(26, slot*0.55)

	svgAxes(&b, xLabel, yLabel, 0, float64(len(cols)), lo, hi,
		func(x float64) float64 { return float64(svgMarginL) + plotW*x/float64(len(cols)) }, py)

	for i, c := range cols {
		cx := float64(svgMarginL) + slot*(float64(i)+0.5)
		color := svgPalette[0]
		// Whiskers.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`,
			cx, py(c.Box.WhiskerLow), cx, py(c.Box.WhiskerHigh), color)
		// Box.
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#cfe3f2" stroke="%s"/>`,
			cx-boxW/2, py(c.Box.Q3), boxW, math.Abs(py(c.Box.Q1)-py(c.Box.Q3)), color)
		// Median.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`,
			cx-boxW/2, py(c.Box.Median), cx+boxW/2, py(c.Box.Median), "#d1495b")
		// Outliers.
		for _, o := range c.Box.Outliers {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="none" stroke="%s"/>`, cx, py(o), color)
		}
		// Column label.
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="lbl" text-anchor="middle">%s</text>`,
			cx, svgH-svgMarginB+16, svgEscape(c.Label))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func svgHeader(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		svgW, svgH, svgW, svgH)
	b.WriteString("\n<style>text{font-family:sans-serif}.lbl{font-size:11px;fill:#333}.ttl{font-size:14px;fill:#111}</style>\n")
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, svgW, svgH)
	fmt.Fprintf(b, `<text x="%d" y="22" class="ttl" text-anchor="middle">%s</text>`, svgW/2, svgEscape(title))
	b.WriteString("\n")
}

// svgAxes draws the frame, ticks and axis labels.
func svgAxes(b *strings.Builder, xLabel, yLabel string, minX, maxX, minY, maxY float64,
	px, py func(float64) float64) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		svgMarginL, svgMarginT, svgW-svgMarginL-svgMarginR, svgH-svgMarginT-svgMarginB)
	b.WriteString("\n")
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		xv := minX + (maxX-minX)*float64(i)/ticks
		yv := minY + (maxY-minY)*float64(i)/ticks
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999"/>`,
			px(xv), svgH-svgMarginB, px(xv), svgH-svgMarginB+4)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" class="lbl" text-anchor="middle">%.4g</text>`,
			px(xv), svgH-svgMarginB+18, xv)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999"/>`,
			svgMarginL-4, py(yv), svgMarginL, py(yv))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" class="lbl" text-anchor="end">%.4g</text>`,
			svgMarginL-7, py(yv)+4, yv)
		b.WriteString("\n")
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" class="lbl" text-anchor="middle">%s</text>`,
		svgW/2, svgH-12, svgEscape(xLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" class="lbl" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		svgH/2, svgH/2, svgEscape(yLabel))
	b.WriteString("\n")
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteSVG writes an SVG document to path, creating parent directories.
// The write is atomic (temp file + rename), like every other result file.
func WriteSVG(path, svg string) error {
	return WriteFileAtomicBytes(path, []byte(svg))
}
