package trace

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/stats"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.csv")
	err := WriteCSV(path, []string{"d", "mbps"}, [][]float64{
		{20, 24.97},
		{40, 19.4},
		{math.Inf(1), math.NaN()},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	// NaN renders as an empty cell — "no data", not a literal "nan" token.
	want := "d,mbps\n20,24.97\n40,19.4\ninf,\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
}

func TestLinePlotRendersSeries(t *testing.T) {
	s := []Series{
		{Name: "fit", X: []float64{1, 2, 3, 4}, Y: []float64{10, 8, 6, 4}},
		{Name: "sim", X: []float64{1, 2, 3, 4}, Y: []float64{9, 7, 5, 3}},
	}
	out := LinePlot("test plot", s, 40, 10)
	if !strings.Contains(out, "test plot") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "fit") || !strings.Contains(out, "sim") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("marks missing")
	}
	// Non-finite and empty input degrade gracefully.
	if out := LinePlot("empty", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("empty plot should say so")
	}
	bad := []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}
	if out := LinePlot("nan", bad, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("all-NaN plot should degrade")
	}
}

func TestLinePlotTinyDimensionsClamped(t *testing.T) {
	s := []Series{{Name: "x", X: []float64{0, 1}, Y: []float64{0, 1}}}
	out := LinePlot("tiny", s, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestBoxPlot(t *testing.T) {
	mk := func(xs ...float64) stats.Boxplot {
		b, err := stats.Summarize(xs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cols := []BoxColumn{
		{Label: "d=20", Box: mk(10, 20, 25, 30, 35, 40)},
		{Label: "d=40", Box: mk(5, 10, 12, 15, 18, 60)},
	}
	out := BoxPlot("throughput", cols, 50)
	if !strings.Contains(out, "d=20") || !strings.Contains(out, "d=40") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "M") {
		t.Fatal("median glyph missing")
	}
	if !strings.Contains(out, "o") {
		t.Fatal("outlier glyph missing (60 is an outlier)")
	}
	if out := BoxPlot("empty", nil, 50); !strings.Contains(out, "no data") {
		t.Fatal("empty boxplot should say so")
	}
}

func TestTable(t *testing.T) {
	out := Table("platforms", []string{"Feature", "Airplane"}, [][]string{
		{"Hovering", "No"},
		{"Cruise speed", "10 m/s"},
	})
	if !strings.Contains(out, "platforms") || !strings.Contains(out, "Cruise speed") {
		t.Fatalf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[float64]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("dopt (m)",
		[]string{"5MB", "45MB"},
		[]string{"v=3", "v=20"},
		[][]float64{{280, 120}, {60, 20}})
	if !strings.Contains(out, "dopt (m)") || !strings.Contains(out, "5MB") ||
		!strings.Contains(out, "v=20") {
		t.Fatalf("heatmap output: %q", out)
	}
	if !strings.Contains(out, "280") || !strings.Contains(out, "20") {
		t.Fatal("values missing")
	}
	if out := Heatmap("empty", nil, nil, nil); !strings.Contains(out, "no data") {
		t.Fatal("empty heatmap should degrade")
	}
	withNaN := Heatmap("nan", []string{"a"}, []string{"b"}, [][]float64{{math.NaN()}})
	if !strings.Contains(withNaN, "no finite data") {
		t.Fatalf("NaN heatmap: %q", withNaN)
	}
}

func TestSVGLinePlot(t *testing.T) {
	s := []Series{
		{Name: "fit & sim", X: []float64{1, 2, 3}, Y: []float64{10, 6, 3}},
		{Name: "other", X: []float64{1, 2, 3}, Y: []float64{8, 5, 2}},
	}
	out := SVGLinePlot("test <plot>", "distance (m)", "Mb/s", s)
	for _, want := range []string{"<svg", "polyline", "test &lt;plot&gt;", "fit &amp; sim", "distance (m)", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if empty := SVGLinePlot("none", "x", "y", nil); !strings.Contains(empty, "no data") {
		t.Error("empty svg should degrade")
	}
}

func TestSVGBoxPlot(t *testing.T) {
	b1, err := stats.Summarize([]float64{1, 2, 3, 4, 20})
	if err != nil {
		t.Fatal(err)
	}
	out := SVGBoxPlot("boxes", "d", "Mb/s", []BoxColumn{{Label: "d=20", Box: b1}})
	for _, want := range []string{"<svg", "<rect", "d=20", "circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if empty := SVGBoxPlot("none", "x", "y", nil); !strings.Contains(empty, "no data") {
		t.Error("empty boxplot svg should degrade")
	}
}

func TestWriteSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "plot.svg")
	if err := WriteSVG(path, SVGLinePlot("t", "x", "y", nil)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("not an svg")
	}
}
