package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a result file via temp file + rename: render
// streams the content into a temp file in the destination directory (same
// filesystem, so the rename is atomic), which is fsync'd and only then
// moved over path. An interrupted or failed write leaves either the old
// content intact or nothing — never a torn file — and the temp file is
// always cleaned up. Every CSV/SVG/summary emitted by cmd/experiments
// routes through here; this is what makes the kill-and-resume guarantee
// meaningful at the output layer, not just the journal layer.
func WriteFileAtomic(path string, render func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := render(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteFileAtomicBytes is WriteFileAtomic for pre-rendered content.
func WriteFileAtomicBytes(path string, data []byte) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		return nil
	})
}
