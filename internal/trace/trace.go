// Package trace renders experiment results as CSV files and ASCII plots.
// The Go ecosystem has no Matlab; every figure of the paper is therefore
// regenerated as (a) a CSV series suitable for any plotting tool and (b) a
// terminal ASCII rendering that makes the shape comparison immediate.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/nowlater/nowlater/internal/stats"
)

// WriteCSV writes a header row and records to path, creating parent
// directories as needed. The write is atomic (temp file + rename): an
// interrupted run never leaves a truncated CSV behind.
func WriteCSV(path string, header []string, rows [][]float64) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		return writeCSVTo(w, header, rows)
	})
}

func writeCSVTo(w io.Writer, header []string, rows [][]float64) error {
	if len(header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = formatCell(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

func formatCell(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	// NaN means "no data" (e.g. a median over zero completed deliveries);
	// an empty cell keeps the CSV honest and spreadsheet-friendly, matching
	// how the SVG layer drops non-finite points.
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%g", v)
}

// Series is one named line of an XY chart.
type Series struct {
	Name string
	X, Y []float64
}

// LinePlot renders one or more series as an ASCII chart of the given size.
// Non-finite points are skipped.
func LinePlot(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if !finite(s.X[i]) || i >= len(s.Y) || !finite(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if minX > maxX {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			if !finite(s.X[i]) || i >= len(s.Y) || !finite(s.Y[i]) {
				continue
			}
			cx := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			cy := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	fmt.Fprintf(&b, "  %10.3g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "  %10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "  %10.3g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "  %10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "  %10s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// BoxColumn is one labelled boxplot column.
type BoxColumn struct {
	Label string
	Box   stats.Boxplot
}

// BoxPlot renders labelled boxplot columns vertically: one row per column
// with whisker/quartile glyphs on a shared horizontal axis — the ASCII
// stand-in for the paper's Fig 5/7 boxplots.
func BoxPlot(title string, cols []BoxColumn, width int) string {
	if width < 24 {
		width = 24
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(cols) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cols {
		lo = math.Min(lo, c.Box.Min)
		hi = math.Max(hi, c.Box.Max)
	}
	if hi == lo {
		hi = lo + 1
	}
	scale := func(v float64) int {
		x := int(float64(width-1) * (v - lo) / (hi - lo))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		return x
	}
	labelW := 0
	for _, c := range cols {
		if len(c.Label) > labelW {
			labelW = len(c.Label)
		}
	}
	for _, c := range cols {
		row := []byte(strings.Repeat(" ", width))
		wl, wh := scale(c.Box.WhiskerLow), scale(c.Box.WhiskerHigh)
		q1, q3 := scale(c.Box.Q1), scale(c.Box.Q3)
		for i := wl; i <= wh; i++ {
			row[i] = '-'
		}
		for i := q1; i <= q3; i++ {
			row[i] = '='
		}
		row[wl], row[wh] = '|', '|'
		row[scale(c.Box.Median)] = 'M'
		for _, o := range c.Box.Outliers {
			row[scale(o)] = 'o'
		}
		fmt.Fprintf(&b, "  %-*s %s\n", labelW, c.Label, string(row))
	}
	fmt.Fprintf(&b, "  %-*s %-*.4g%*.4g\n", labelW, "", width/2, lo, width-width/2, hi)
	return b.String()
}

// Table renders a simple aligned text table.
func Table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintf(&b, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// SortedKeys returns map keys sorted numerically (helper for deterministic
// experiment output).
func SortedKeys[M map[float64]V, V any](m M) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

// Heatmap renders a small matrix as ASCII shades (rows × cols), e.g. the
// dopt surface of Fig 9. values[r][c] maps row r (labelled rowLabels[r])
// and column c (colLabels[c]); shading is normalized over the finite
// values.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64) string {
	shades := " .:-=+*#%@"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(values) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			if finite(v) {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
	}
	if lo > hi {
		b.WriteString("  (no finite data)\n")
		return b.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	colW := 0
	for _, l := range colLabels {
		if len(l) > colW {
			colW = len(l)
		}
	}
	if colW < 5 {
		colW = 5
	}
	fmt.Fprintf(&b, "  %-*s", labelW, "")
	for _, l := range colLabels {
		fmt.Fprintf(&b, " %*s", colW, l)
	}
	b.WriteString("\n")
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "  %-*s", labelW, label)
		for _, v := range row {
			if !finite(v) {
				fmt.Fprintf(&b, " %*s", colW, "?")
				continue
			}
			idx := int(float64(len(shades)-1) * (v - lo) / (hi - lo))
			cell := fmt.Sprintf("%s%.0f", string(shades[idx]), v)
			fmt.Fprintf(&b, " %*s", colW, cell)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  (shade: %s spans [%.3g, %.3g])\n", strings.TrimSpace(shades), lo, hi)
	return b.String()
}
