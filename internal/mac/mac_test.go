package mac

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/stats"
)

func newTestMAC(t *testing.T, seed int64) *MAC {
	t.Helper()
	cfg := phy.DefaultConfig()
	m, err := New(DefaultParams(), cfg, phy.NewErrorModel(cfg), stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.MaxAggregation = 0 },
		func(p *Params) { p.MaxAggregation = 100 },
		func(p *Params) { p.MPDUPayloadBytes = 0 },
		func(p *Params) { p.MPDUOverheadBytes = -1 },
		func(p *Params) { p.RetryLimit = -1 },
		func(p *Params) { p.CWMin = -2 },
		func(p *Params) { p.FillRateBps = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(DefaultParams(), phy.DefaultConfig(), nil, stats.NewRNG(1)); err == nil {
		t.Fatal("nil error model accepted")
	}
}

func TestEnqueueSegmentation(t *testing.T) {
	m := newTestMAC(t, 1)
	m.Enqueue(1500*3 + 100)
	if m.QueuedMPDUs() != 4 {
		t.Fatalf("MPDUs = %d, want 4", m.QueuedMPDUs())
	}
	if m.QueuedBytes() != 1500*3+100 {
		t.Fatalf("bytes = %d", m.QueuedBytes())
	}
	m.Enqueue(0)
	if m.QueuedMPDUs() != 4 {
		t.Fatal("Enqueue(0) should be a no-op")
	}
}

func TestTransactEmptyQueue(t *testing.T) {
	m := newTestMAC(t, 1)
	ex := m.Transact(30, 12, 0, 3, false)
	if ex.Attempted != 0 || ex.AirtimeSeconds != 0 {
		t.Fatalf("empty-queue exchange: %+v", ex)
	}
}

func TestTransactHighSNRDeliversEverything(t *testing.T) {
	m := newTestMAC(t, 2)
	m.Enqueue(14 * 1500)
	ex := m.Transact(45, 12, 0, 3, false)
	if ex.Attempted != 14 {
		t.Fatalf("attempted = %d, want full aggregation", ex.Attempted)
	}
	if ex.Delivered != 14 || m.QueuedMPDUs() != 0 {
		t.Fatalf("delivered = %d, queued = %d", ex.Delivered, m.QueuedMPDUs())
	}
	if ex.DeliveredBytes != 14*1500 {
		t.Fatalf("delivered bytes = %d", ex.DeliveredBytes)
	}
	if ex.AirtimeSeconds <= 0 {
		t.Fatal("no airtime recorded")
	}
}

func TestTransactLowSNRDeliversNothingAndRetries(t *testing.T) {
	m := newTestMAC(t, 3)
	m.Enqueue(5 * 1500)
	ex := m.Transact(-20, 12, 0, 7, false)
	if ex.Delivered != 0 {
		t.Fatalf("delivered = %d at −20 dB", ex.Delivered)
	}
	if m.QueuedMPDUs() != 5 {
		t.Fatalf("failed MPDUs should be requeued: %d", m.QueuedMPDUs())
	}
	// After RetryLimit more failures they drop.
	for i := 0; i < DefaultParams().RetryLimit; i++ {
		m.Transact(-20, 12, 0, 7, false)
	}
	if m.QueuedMPDUs() != 0 {
		t.Fatalf("MPDUs never dropped: %d left", m.QueuedMPDUs())
	}
	if m.DroppedBytes != 5*1500 {
		t.Fatalf("dropped bytes = %d", m.DroppedBytes)
	}
}

func TestAggregationLimitedByQueue(t *testing.T) {
	m := newTestMAC(t, 4)
	m.Enqueue(3 * 1500)
	ex := m.Transact(45, 12, 0, 3, false)
	if ex.Attempted != 3 {
		t.Fatalf("attempted = %d, want 3", ex.Attempted)
	}
}

func TestFillRateCapsAggregationAtHighPHYRate(t *testing.T) {
	p := DefaultParams()
	p.FillRateBps = 100e6
	cfg := phy.DefaultConfig()
	m, err := New(p, cfg, phy.NewErrorModel(cfg), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	m.Enqueue(14 * 1500)
	// MCS15 = 300 Mb/s > 100 Mb/s fill → aggregation ≈ 14/3.
	ex := m.Transact(50, -5, 0, 15, false)
	if ex.Attempted >= 14 || ex.Attempted < 1 {
		t.Fatalf("fill-limited aggregation = %d", ex.Attempted)
	}
	// MCS3 = 60 Mb/s < fill → full aggregation.
	m.Reset()
	m.Enqueue(14 * 1500)
	if ex := m.Transact(50, -5, 0, 3, false); ex.Attempted != 14 {
		t.Fatalf("uncapped aggregation = %d", ex.Attempted)
	}
}

func TestCountersAccumulate(t *testing.T) {
	m := newTestMAC(t, 6)
	m.Enqueue(30 * 1500)
	var air float64
	var bytes int64
	for m.QueuedMPDUs() > 0 {
		ex := m.Transact(45, 12, 0, 3, false)
		air += ex.AirtimeSeconds
		bytes += int64(ex.DeliveredBytes)
	}
	if math.Abs(m.AirtimeSeconds-air) > 1e-12 || m.DeliveredBytes != bytes {
		t.Fatalf("counters drifted: %v vs %v, %d vs %d", m.AirtimeSeconds, air, m.DeliveredBytes, bytes)
	}
	m.Reset()
	if m.DeliveredBytes != 0 || m.QueuedMPDUs() != 0 || m.AirtimeSeconds != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestIdealThroughputOrdering(t *testing.T) {
	m := newTestMAC(t, 7)
	// Efficiency: MCS3 saturation UDP throughput should land in 40–55 Mb/s
	// (PHY 60 Mb/s minus aggregation-amortized DCF overhead).
	got := m.IdealThroughputBps(3) / 1e6
	if got < 40 || got > 56 {
		t.Fatalf("MCS3 saturation throughput = %.1f Mb/s", got)
	}
	// The paper's indoor anchor: MCS15 ≈ 176 Mb/s on the same hardware.
	indoor := m.IdealThroughputBps(15) / 1e6
	if indoor < 150 || indoor > 210 {
		t.Fatalf("MCS15 saturation throughput = %.1f Mb/s, want ≈176", indoor)
	}
	if m.IdealThroughputBps(1) >= m.IdealThroughputBps(3) {
		t.Fatal("saturation throughput should grow with MCS")
	}
}

func TestRetriedMPDUsKeepOrder(t *testing.T) {
	// Head-of-line MPDU fails, later ones succeed: the failed one must be
	// retransmitted before new data.
	m := newTestMAC(t, 8)
	m.Enqueue(2 * 1500)
	// Drive with a PER that will fail at least one subframe eventually.
	for i := 0; i < 100 && m.QueuedMPDUs() > 0; i++ {
		m.Transact(14, 12, 0, 3, false)
	}
	if m.QueuedMPDUs() != 0 && m.DroppedBytes == 0 {
		t.Fatalf("transfer stalled with %d MPDUs", m.QueuedMPDUs())
	}
}

// Property: conservation — every enqueued byte is eventually delivered or
// dropped, never duplicated or lost.
func TestByteConservationProperty(t *testing.T) {
	f := func(seed int64, nKB uint8, snrRaw int8) bool {
		m, err := New(DefaultParams(), phy.DefaultConfig(),
			phy.NewErrorModel(phy.DefaultConfig()), stats.NewRNG(seed))
		if err != nil {
			return false
		}
		total := int(nKB%40+1) * 1000
		m.Enqueue(total)
		snr := float64(snrRaw % 40) // includes hopeless and perfect regimes
		for i := 0; i < 10000 && m.QueuedMPDUs() > 0; i++ {
			m.Transact(snr, 12, 0, 3, false)
		}
		return m.DeliveredBytes+m.DroppedBytes+int64(m.QueuedBytes()) == int64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivered subframes never exceed attempted.
func TestDeliveredBoundedProperty(t *testing.T) {
	m := newTestMAC(t, 99)
	f := func(snrRaw int8, mcsRaw uint8) bool {
		m.Enqueue(20 * 1500)
		ex := m.Transact(float64(snrRaw), 10, 0, phy.MCS(mcsRaw%phy.NumMCS), false)
		return ex.Delivered+ex.Dropped <= ex.Attempted && ex.Delivered >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
