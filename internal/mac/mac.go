// Package mac models the 802.11n data path the paper's adapters ran:
// DCF channel access, A-MPDU frame aggregation (default 14 subframes, as
// configured on the Ralink driver, Section 3), block acknowledgements, and
// per-MPDU retry chains.
//
// The model is transaction-based: one call to Transact performs one
// A-MPDU/block-ACK exchange — backoff, aggregation-limited PPDU, BA — and
// reports the airtime consumed and the subframes delivered. The paper's
// embedded-platform artifact is included: "if the physical rate is too
// high, the embedded system may not fill the buffer fast enough, resulting
// in a lower number of A-MPDU sub-frames" (Section 3), modelled as a fill
// rate that caps aggregation depth at high PHY rates.
package mac

import (
	"errors"
	"fmt"

	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/stats"
)

// Params configures the MAC.
type Params struct {
	// MaxAggregation is the A-MPDU subframe cap (driver default 14).
	MaxAggregation int
	// MPDUPayloadBytes is the application payload per subframe (UDP MTU).
	MPDUPayloadBytes int
	// MPDUOverheadBytes covers MAC header, LLC/SNAP, IP/UDP headers, FCS,
	// A-MPDU delimiter and padding.
	MPDUOverheadBytes int
	// SIFSSeconds / DIFSSeconds / SlotSeconds are 5 GHz OFDM timings.
	SIFSSeconds float64
	DIFSSeconds float64
	SlotSeconds float64
	// CWMin is the minimum contention window (backoff drawn from [0,CWMin]).
	CWMin int
	// BlockAckSeconds is the airtime of the compressed block ACK response
	// at a legacy basic rate, plus its preamble.
	BlockAckSeconds float64
	// RetryLimit drops an MPDU after this many failed transmissions.
	RetryLimit int
	// FillRateBps is the host-to-driver fill throughput of the embedded
	// board; at PHY rates above it the aggregation depth shrinks.
	FillRateBps float64
}

// DefaultParams matches the paper's configuration (Section 3, "Wi-Fi
// 802.11 Communication"): aggregation 14, 1500-byte datagrams, 5 GHz DCF
// timing, and a Gumstix-class fill rate.
func DefaultParams() Params {
	return Params{
		MaxAggregation:    14,
		MPDUPayloadBytes:  1500,
		MPDUOverheadBytes: 68,
		SIFSSeconds:       16e-6,
		DIFSSeconds:       34e-6,
		SlotSeconds:       9e-6,
		CWMin:             15,
		BlockAckSeconds:   44e-6,
		RetryLimit:        7,
		FillRateBps:       185e6,
	}
}

// Validate reports the first implausible parameter.
func (p Params) Validate() error {
	switch {
	case p.MaxAggregation < 1 || p.MaxAggregation > 64:
		return fmt.Errorf("mac: aggregation %d outside [1,64]", p.MaxAggregation)
	case p.MPDUPayloadBytes <= 0:
		return fmt.Errorf("mac: payload %d must be positive", p.MPDUPayloadBytes)
	case p.MPDUOverheadBytes < 0:
		return fmt.Errorf("mac: negative overhead %d", p.MPDUOverheadBytes)
	case p.RetryLimit < 0:
		return fmt.Errorf("mac: negative retry limit %d", p.RetryLimit)
	case p.CWMin < 0:
		return fmt.Errorf("mac: negative CWMin %d", p.CWMin)
	case p.FillRateBps <= 0:
		return fmt.Errorf("mac: fill rate %v must be positive", p.FillRateBps)
	}
	return nil
}

// mpdu is one queued subframe.
type mpdu struct {
	payloadBytes int
	retries      int
}

// MAC is the transmit side of one 802.11n station. Not safe for concurrent
// use; the simulator drives it from one goroutine.
type MAC struct {
	p   Params
	cfg phy.Config
	em  *phy.ErrorModel
	rng *stats.RNG

	queue []mpdu

	// Counters since construction.
	DeliveredBytes int64
	DroppedBytes   int64
	Exchanges      int64
	AirtimeSeconds float64
}

// New builds a MAC. The error model must share the PHY config.
func New(p Params, cfg phy.Config, em *phy.ErrorModel, rng *stats.RNG) (*MAC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if em == nil {
		return nil, errors.New("mac: nil error model")
	}
	return &MAC{p: p, cfg: cfg, em: em, rng: rng}, nil
}

// Params returns the MAC configuration.
func (m *MAC) Params() Params { return m.p }

// Enqueue splits nBytes of application data into MPDUs and queues them.
func (m *MAC) Enqueue(nBytes int) {
	for nBytes > 0 {
		sz := m.p.MPDUPayloadBytes
		if nBytes < sz {
			sz = nBytes
		}
		m.queue = append(m.queue, mpdu{payloadBytes: sz})
		nBytes -= sz
	}
}

// QueuedBytes returns the application bytes waiting for delivery.
func (m *MAC) QueuedBytes() int {
	total := 0
	for _, f := range m.queue {
		total += f.payloadBytes
	}
	return total
}

// QueuedMPDUs returns the number of queued subframes.
func (m *MAC) QueuedMPDUs() int { return len(m.queue) }

// Exchange is the outcome of one A-MPDU/block-ACK transaction.
type Exchange struct {
	MCS            phy.MCS
	STBC           bool
	SNRDB          float64
	Attempted      int     // subframes in the A-MPDU
	Delivered      int     // subframes acknowledged
	Dropped        int     // subframes discarded (retry limit)
	DeliveredBytes int     // application bytes acknowledged
	AirtimeSeconds float64 // total medium time incl. backoff, SIFS, BA
	SubframePER    float64 // the PER the channel imposed on this PPDU
}

// aggregationLimit applies the embedded-platform fill-rate cap.
func (m *MAC) aggregationLimit(mcs phy.MCS) int {
	n := m.p.MaxAggregation
	rate := m.cfg.RateBps(mcs)
	if rate > m.p.FillRateBps {
		n = int(float64(m.p.MaxAggregation) * m.p.FillRateBps / rate)
		if n < 1 {
			n = 1
		}
	}
	return n
}

// Transact performs one exchange at the given instantaneous channel state.
// snrDB and kFactorDB come from a channel sample, relSpeedMPS from the
// geometry (it drives the stale-channel-estimate loss of long A-MPDUs);
// mcs and stbc come from the rate-control policy. An empty queue returns a
// zero Exchange with no airtime.
func (m *MAC) Transact(snrDB, kFactorDB, relSpeedMPS float64, mcs phy.MCS, stbc bool) Exchange {
	if len(m.queue) == 0 {
		return Exchange{MCS: mcs, STBC: stbc, SNRDB: snrDB}
	}
	n := m.aggregationLimit(mcs)
	if n > len(m.queue) {
		n = len(m.queue)
	}
	batch := m.queue[:n]

	// PPDU length: payload plus per-subframe overhead.
	bits := 0
	for _, f := range batch {
		bits += (f.payloadBytes + m.p.MPDUOverheadBytes) * 8
	}
	mpduBits := (m.p.MPDUPayloadBytes + m.p.MPDUOverheadBytes) * 8
	per := m.em.SubframePER(snrDB, mcs, mpduBits, kFactorDB, stbc)
	// Motion cost: the PPDU outlives the Doppler coherence time, so tail
	// subframes decode against a stale channel estimate.
	if pm := m.em.MotionPER(relSpeedMPS, m.cfg.AirtimeSeconds(mcs, bits)); pm > 0 {
		per = 1 - (1-per)*(1-pm)
	}

	ex := Exchange{
		MCS: mcs, STBC: stbc, SNRDB: snrDB,
		Attempted: n, SubframePER: per,
	}

	// DCF overhead: DIFS + uniform backoff + PPDU + SIFS + block ACK.
	backoff := float64(m.rng.Intn(m.p.CWMin+1)) * m.p.SlotSeconds
	ex.AirtimeSeconds = m.p.DIFSSeconds + backoff +
		m.cfg.AirtimeSeconds(mcs, bits) + m.p.SIFSSeconds + m.p.BlockAckSeconds

	// Per-subframe success draws; failures stay queued for retry.
	var survivors []mpdu
	for _, f := range batch {
		if !m.rng.Bernoulli(per) {
			ex.Delivered++
			ex.DeliveredBytes += f.payloadBytes
			continue
		}
		f.retries++
		if f.retries > m.p.RetryLimit {
			ex.Dropped++
			m.DroppedBytes += int64(f.payloadBytes)
			continue
		}
		survivors = append(survivors, f)
	}
	// Requeue failed subframes at the head: block-ACK reordering keeps the
	// window on the oldest outstanding MPDUs.
	m.queue = append(survivors, m.queue[n:]...)

	m.DeliveredBytes += int64(ex.DeliveredBytes)
	m.Exchanges++
	m.AirtimeSeconds += ex.AirtimeSeconds
	return ex
}

// Reset clears the queue and counters.
func (m *MAC) Reset() {
	m.queue = m.queue[:0]
	m.DeliveredBytes, m.DroppedBytes, m.Exchanges = 0, 0, 0
	m.AirtimeSeconds = 0
}

// IdealThroughputBps returns the saturation UDP throughput at mcs with a
// perfectly clean channel: the steady-state ratio of delivered payload to
// exchange airtime. This is the MAC-efficiency ceiling the indoor test in
// the paper approaches (≈176 Mb/s at MCS15).
func (m *MAC) IdealThroughputBps(mcs phy.MCS) float64 {
	n := m.aggregationLimit(mcs)
	payloadBits := n * m.p.MPDUPayloadBytes * 8
	ppduBits := n * (m.p.MPDUPayloadBytes + m.p.MPDUOverheadBytes) * 8
	meanBackoff := float64(m.p.CWMin) / 2 * m.p.SlotSeconds
	airtime := m.p.DIFSSeconds + meanBackoff +
		m.cfg.AirtimeSeconds(mcs, ppduBits) + m.p.SIFSSeconds + m.p.BlockAckSeconds
	return float64(payloadBits) / airtime
}
