// sar_mission: plan a search-and-rescue sensing sortie end to end with the
// public API — derive the batch size Mdata from the camera geometry and
// sector assignment, build the delayed-gratification scenario, and compare
// the three delivery strategies of the paper's Fig. 1.
package main

import (
	"fmt"
	"log"
	"math"

	nowlater "github.com/nowlater/nowlater"
)

func main() {
	// A quadrocopter scans a 100×100 m sector from 10 m with the paper's
	// 1280×720, 65°-lens camera.
	plan := nowlater.QuadrocopterSensingPlan()
	cam := plan.Camera
	fmt.Printf("Sensing plan: %gx%g m sector from %g m altitude\n",
		plan.Sector.WidthM, plan.Sector.HeightM, plan.AltitudeM)
	fmt.Printf("  camera FOV %.1f m → one image covers %.1f m² (%.2f MB each)\n",
		cam.FOVMeters(plan.AltitudeM), cam.ImageAreaM2(plan.AltitudeM), cam.ImageBytes()/1e6)
	fmt.Printf("  %.0f images → Mdata = %.1f MB to deliver\n",
		math.Ceil(plan.NumImages()), plan.DataBytes()/1e6)

	// The ferry surfaces 100 m from the relay with that batch.
	sc := nowlater.QuadrocopterBaseline()
	sc.MdataBytes = plan.DataBytes()
	opt, err := sc.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDelayed gratification: dopt = %.1f m (U = %.4f, survival %.1f%%)\n",
		opt.DoptM, opt.Utility, opt.Survival*100)

	fmt.Println("\nStrategy comparison (paper's fitted quadrocopter throughput):")
	pen := nowlater.DefaultSpeedPenalty()
	for _, st := range []nowlater.Strategy{
		nowlater.TransmitNow, nowlater.ShipThenTransmit, nowlater.MoveAndTransmit,
	} {
		out, err := sc.RunStrategy(st, opt.DoptM, pen)
		if err != nil {
			log.Fatal(err)
		}
		completion := fmt.Sprintf("%.1f s", out.CompletionS)
		if math.IsInf(out.CompletionS, 1) {
			completion = "never completes"
		}
		fmt.Printf("  %-20s transmit at %3.0f m → %s\n", out.Strategy, out.TargetDM, completion)
	}

	// Time-critical missions also care about how much arrives by a
	// deadline: sample the winning strategy's delivery curve.
	out, err := sc.RunStrategy(nowlater.ShipThenTransmit, opt.DoptM, pen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDelivery profile of ship-then-transmit:")
	for _, deadline := range []float64{10, 20, 30, 45, 60} {
		var got float64
		for _, p := range out.Series {
			if p.TimeS <= deadline {
				got = p.DeliveredMB
			}
		}
		fmt.Printf("  by %3.0f s: %5.1f MB of %.1f\n", deadline, got, sc.MdataBytes/1e6)
	}
}
