// Policy service: precompute the dopt decision surface once, persist it,
// and serve decisions from the table instead of re-optimizing per query —
// the library-level view of what cmd/nowlaterd does over HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	nowlater "github.com/nowlater/nowlater"
)

func main() {
	// A smoke-scale lattice builds in tens of milliseconds; the default
	// grid (11k points, ~2 s) is what a deployment would precompute.
	cfg := nowlater.AirplanePolicyConfig()
	cfg.Grid = nowlater.QuickPolicyGrid()

	start := time.Now()
	tbl, err := nowlater.BuildPolicyTable(context.Background(), cfg, nowlater.PolicyBuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-point table in %v\n", cfg.Grid.Points(), time.Since(start).Round(time.Millisecond))

	// Persist and reload: the file is CRC-checked and fingerprinted, so a
	// corrupted file or a config drift is rejected loudly at load time.
	dir, err := os.MkdirTemp("", "policy-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "airplane.nlpt")
	if err := nowlater.WritePolicyTable(tbl, path); err != nil {
		log.Fatal(err)
	}
	loaded, err := nowlater.LoadMatchingPolicyTable(path, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted and reloaded %s\n", filepath.Base(path))

	eng, err := nowlater.NewPolicyEngine(loaded, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the paper's baseline decision and a few variations; the same
	// query twice shows the cache path.
	queries := []nowlater.PolicyQuery{
		{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: nowlater.AirplaneRho},
		{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: nowlater.AirplaneRho},
		{D0M: 200, SpeedMPS: 5, MdataMB: 10, Rho: 1e-3},
		{D0M: 900, SpeedMPS: 10, MdataMB: 28, Rho: nowlater.AirplaneRho}, // outside the grid
	}
	for _, q := range queries {
		dec, err := eng.Decide(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("d0=%3.0f m, v=%2.0f m/s, %4.1f MB, rho=%.3g → dopt %6.1f m (%s)\n",
			q.D0M, q.SpeedMPS, q.MdataMB, q.Rho, dec.DoptM, dec.Source)
	}

	// The engine answer must agree with solving exactly.
	sc := nowlater.AirplaneBaseline()
	exact, err := sc.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	dec, err := eng.Decide(queries[0])
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("baseline: served %.2f m vs exact %.2f m\n", dec.DoptM, exact.DoptM)
	fmt.Printf("stats: %d requests, %d cache hits, %d table hits, %d exact fallbacks\n",
		st.Requests, st.CacheHits, st.TableHits, st.ExactFallbacks())
}
