// ferry_relay: drive the packet-level aerial link directly — a
// quadrocopter ferry delivers a 56 MB batch to a relay, comparing
// "transmit where you are" against "ship to dopt first" on the simulated
// 802.11n stack (channel + PHY + A-MPDU MAC + Minstrel), not just the
// analytic model.
package main

import (
	"fmt"
	"log"
	"math"

	nowlater "github.com/nowlater/nowlater"
)

const (
	d0        = 100.0 // where the link opens (m)
	altitude  = 10.0
	batch     = 56_200_000 // bytes
	shipSpeed = 4.5
)

func main() {
	// Ask the model where to transmit.
	sc := nowlater.QuadrocopterBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model says: transmit at %.0f m (expected Cdelay %.0f s)\n\n", opt.DoptM, opt.CommDelay)

	now := measureDelivery(d0, 1)          // transmit immediately at d0
	later := measureDelivery(opt.DoptM, 2) // ship to dopt, then transmit
	ship := (d0 - opt.DoptM) / shipSpeed

	fmt.Printf("transmit now  @ %3.0f m: %6.1f s of airtime\n", d0, now)
	fmt.Printf("ship %4.1f s, transmit @ %3.0f m: %6.1f s total\n", ship, opt.DoptM, ship+later)
	if ship+later < now {
		fmt.Printf("→ delayed gratification wins by %.1f s on the packet-level link\n", now-(ship+later))
	} else {
		fmt.Println("→ the batch was too small for shipping to pay off this time")
	}
}

// measureDelivery transmits the batch at a fixed hover distance over a
// fresh packet-level link and returns the airtime needed.
func measureDelivery(distance float64, seed int64) float64 {
	cfg := nowlater.DefaultLinkConfig()
	cfg.Seed = seed
	cfg.Label = fmt.Sprintf("ferry_relay/d%.0f", distance)
	l, err := nowlater.NewLink(cfg, nil) // nil → Minstrel auto-rate
	if err != nil {
		log.Fatal(err)
	}
	l.Enqueue(batch)
	start := l.Now()
	delivered := 0
	for delivered < batch && l.Now()-start < 600 {
		ex := l.Step(nowlater.Geometry{DistanceM: distance, AltitudeM: altitude})
		delivered += ex.DeliveredBytes
		// The MAC gives up on a datagram after its retry limit; the ferry
		// re-sends those images (they must all arrive).
		if dropped := l.MAC().DroppedBytes; dropped > 0 {
			l.Enqueue(int(dropped))
			l.MAC().DroppedBytes = 0
		}
	}
	if delivered < batch {
		return math.Inf(1)
	}
	return l.Now() - start
}
