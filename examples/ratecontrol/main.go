// ratecontrol: the Fig 6 phenomenon as a library user meets it — measure
// the aerial link under Minstrel auto-rate and under each fixed MCS of the
// paper's sweep, at a few distances, while the platforms move relative to
// each other.
package main

import (
	"fmt"
	"log"
	"sort"

	nowlater "github.com/nowlater/nowlater"
)

func main() {
	distances := []float64{40, 100, 180}
	mcsSet := []nowlater.MCS{1, 2, 3, 8}
	const relSpeed = 18.0 // m/s, two airplanes passing
	const trials = 5
	const duration = 8.0 // simulated seconds per trial

	for _, d := range distances {
		g := nowlater.Geometry{DistanceM: d, AltitudeM: 90, RelSpeedMPS: relSpeed}
		results := map[string]float64{}

		auto, err := nowlater.MeasureTrials(nowlater.DefaultLinkConfig(), nil, g, duration, trials)
		if err != nil {
			log.Fatal(err)
		}
		results["autorate"] = median(auto)

		for _, m := range mcsSet {
			m := m
			cfg := nowlater.DefaultLinkConfig()
			cfg.Label = fmt.Sprintf("ratecontrol/mcs%d", int(m))
			xs, err := nowlater.MeasureTrials(cfg,
				func(*nowlater.RNG) nowlater.RatePolicy { return nowlater.NewFixedRate(m) },
				g, duration, trials)
			if err != nil {
				log.Fatal(err)
			}
			results[fmt.Sprintf("fixed MCS%d", int(m))] = median(xs)
		}

		fmt.Printf("distance %.0f m, relative speed %.0f m/s:\n", d, relSpeed)
		names := make([]string, 0, len(results))
		for name := range results {
			names = append(names, name)
		}
		sort.Strings(names)
		best, bestName := 0.0, ""
		for _, name := range names {
			fmt.Printf("  %-12s %6.2f Mb/s\n", name, results[name])
			if name != "autorate" && results[name] > best {
				best, bestName = results[name], name
			}
		}
		fmt.Printf("  → best fixed (%s) delivers %.1f× the auto-rate median\n\n",
			bestName, best/results["autorate"])
	}
	fmt.Println("The sampling auto-rate algorithm cannot track the fast-fading aerial")
	fmt.Println("channel; pinning the PHY rate recovers the loss (the paper's Fig. 6).")
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
