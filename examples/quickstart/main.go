// Quickstart: solve the paper's airplane baseline — where should a
// Swinglet carrying 28 MB of imagery transmit when the 802.11n link to the
// receiver opens at 300 m?
package main

import (
	"fmt"
	"log"

	nowlater "github.com/nowlater/nowlater"
)

func main() {
	sc := nowlater.AirplaneBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Airplane baseline: d0=%.0f m, Mdata=%.1f MB, v=%.0f m/s, rho=%.3g /m\n",
		sc.D0M, sc.MdataBytes/1e6, sc.SpeedMPS, sc.Failure.Rho)
	fmt.Printf("→ transmit at dopt = %.1f m\n", opt.DoptM)
	fmt.Printf("  ship %.1f s + transmit %.1f s = Cdelay %.1f s\n",
		sc.ShipTime(opt.DoptM), sc.TxTime(opt.DoptM), opt.CommDelay)
	fmt.Printf("  vs transmitting immediately at 300 m: %.1f s\n", sc.CommDelay(sc.D0M))
	fmt.Printf("  survival of the shipping leg: %.2f%%\n", opt.Survival*100)

	// How does the decision move when the world gets riskier?
	for _, rho := range []float64{1e-3, 5e-3, 1e-2} {
		m, err := nowlater.NewFailureModel(rho)
		if err != nil {
			log.Fatal(err)
		}
		risky := sc
		risky.Failure = m
		o, err := risky.Optimize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  at rho=%.3g: dopt = %.0f m (impatience wins as risk grows)\n", rho, o.DoptM)
	}
}
