// hazard_planning: the model extensions the paper names as future work —
// a non-stationary failure field (a storm cell on the approach), speed as
// an optimization dimension, and the mixed ship-while-transmitting
// strategy — all through the public API.
package main

import (
	"fmt"
	"log"

	nowlater "github.com/nowlater/nowlater"
)

func main() {
	base := nowlater.AirplaneBaseline()

	// --- 1. Non-stationary failure rate --------------------------------
	clean, err := base.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform risk:      dopt = %5.1f m (survival %.3f)\n", clean.DoptM, clean.Survival)

	// A hazardous band 40–120 m from the receiver (downdrafts near the
	// ridge the receiver hovers behind, say).
	hazardous := nowlater.NonStationaryScenario{
		Scenario: base,
		Field:    nowlater.HazardZoneRho(nowlater.AirplaneRho, 0.02, 40, 120),
	}
	opt, err := hazardous.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hazard at 40–120m: dopt = %5.1f m (survival %.3f) — the optimum retreats\n",
		opt.DoptM, opt.Survival)

	// A field that worsens with distance from the receiver (storm moving
	// in from the search area) pulls the optimum inward instead.
	storm := nowlater.NonStationaryScenario{
		Scenario: base,
		Field:    nowlater.LinearRho(nowlater.AirplaneRho, 5e-3, base.D0M),
	}
	sOpt, err := storm.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storm inbound:     dopt = %5.1f m (survival %.3f)\n", sOpt.DoptM, sOpt.Survival)

	// --- 2. Speed as a decision variable --------------------------------
	fmt.Println("\njoint (distance, speed) optimization, risk ∝ (v/10)²:")
	joint, err := base.OptimizeWithSpeed(3, 14, nowlater.SpeedCost{VRefMPS: 10, Gamma: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fly at %.1f m/s and transmit at %.1f m (delay %.1f s, survival %.3f)\n",
		joint.VoptMPS, joint.DoptM, joint.Delay, joint.Survival)

	// --- 3. Mixed strategy ----------------------------------------------
	fmt.Println("\nmixed strategy (transmit while shipping):")
	pen := nowlater.DefaultSpeedPenalty()
	mixed, err := base.OptimizeMixed(pen)
	if err != nil {
		log.Fatal(err)
	}
	pure, err := base.RunStrategy(nowlater.ShipThenTransmit, mixed.TargetDM, pen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pure  ship-then-transmit @ %3.0f m: %.1f s\n", mixed.TargetDM, pure.CompletionS)
	fmt.Printf("  mixed ship-and-transmit  @ %3.0f m: %.1f s (%.1f MB arrived en route)\n",
		mixed.TargetDM, mixed.CompletionS, mixed.DeliveredEnRouteMB)
	fmt.Printf("  → the paper's Section 2.2 intuition: mixing saves %.1f s here\n",
		pure.CompletionS-mixed.CompletionS)

	// --- 4. Re-positioning cost -----------------------------------------
	fmt.Println("\nre-positioning cost (the ferry must return to its track):")
	for _, w := range []float64{0, 0.5, 1} {
		opt, err := base.OptimizeWithReturn(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  return weight %.1f → dopt %.0f m (return leg %.0f s)\n",
			w, opt.DoptM, opt.ReturnTimeS)
	}
}
