module github.com/nowlater/nowlater

go 1.22
