package nowlater_test

// Godoc examples: runnable documentation for the main entry points.

import (
	"fmt"

	nowlater "github.com/nowlater/nowlater"
)

// ExampleScenario_Optimize solves the paper's airplane baseline.
func ExampleScenario_Optimize() {
	sc := nowlater.AirplaneBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("transmit at %.0f m (delay %.1f s, survival %.2f)\n",
		opt.DoptM, opt.CommDelay, opt.Survival)
	// Output: transmit at 20 m (delay 37.2 s, survival 0.97)
}

// ExampleScenario_CrossoverMB reproduces the Fig 1 crossover: below this
// batch size, transmitting immediately at d0 wins.
func ExampleScenario_CrossoverMB() {
	sc := nowlater.QuadrocopterBaseline()
	sc.D0M = 80
	cross := sc.CrossoverMB(60)
	fmt.Printf("shipping to 60 m pays off above %.0f MB\n", cross/1e6)
	// Output: shipping to 60 m pays off above 9 MB
}

// ExampleSensingPlan shows the camera-geometry derivation of Mdata.
func ExampleSensingPlan() {
	plan := nowlater.AirplaneSensingPlan()
	fmt.Printf("FOV %.0f m, %.0f m2/image, Mdata %.0f MB\n",
		plan.Camera.FOVMeters(plan.AltitudeM),
		plan.Camera.ImageAreaM2(plan.AltitudeM),
		plan.DataBytes()/1e6)
	// Output: FOV 89 m, 3399 m2/image, Mdata 29 MB
}

// ExampleLogFitThroughput evaluates the paper's airplane fit.
func ExampleLogFitThroughput() {
	s := nowlater.AirplaneFit()
	fmt.Printf("s(20) = %.1f Mb/s, s(300) = %.1f Mb/s\n", s.Bps(20)/1e6, s.Bps(300)/1e6)
	// Output: s(20) = 25.0 Mb/s, s(300) = 3.2 Mb/s
}

// ExampleFailureModel shows the exponential-in-distance survival law.
func ExampleFailureModel() {
	m, _ := nowlater.NewFailureModel(nowlater.AirplaneRho)
	fmt.Printf("survive a 280 m shipping leg: %.3f\n", m.Discount(300, 20))
	// Output: survive a 280 m shipping leg: 0.969
}
