package nowlater_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	nowlater "github.com/nowlater/nowlater"
)

// TestQuickstart is the README's quick-start path.
func TestQuickstart(t *testing.T) {
	sc := nowlater.AirplaneBaseline()
	opt, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM < nowlater.MinSeparationM || opt.DoptM > sc.D0M {
		t.Fatalf("dopt = %v", opt.DoptM)
	}
	if opt.CommDelay <= 0 || opt.Survival <= 0 || opt.Survival > 1 {
		t.Fatalf("optimum = %+v", opt)
	}
}

func TestFacadeBaselines(t *testing.T) {
	air, quad := nowlater.AirplaneBaseline(), nowlater.QuadrocopterBaseline()
	if air.D0M != 300 || quad.D0M != 100 {
		t.Fatal("baseline d0 changed")
	}
	if math.Abs(nowlater.AirplaneSensingPlan().DataBytes()-air.MdataBytes) > 1 {
		t.Fatal("sensing plan and scenario Mdata diverge")
	}
	if nowlater.AirplaneRho != 1.11e-4 || nowlater.QuadrocopterRho != 2.46e-4 {
		t.Fatal("paper failure rates changed")
	}
}

func TestFacadeLinkAndPolicies(t *testing.T) {
	cfg := nowlater.DefaultLinkConfig()
	l, err := nowlater.NewLink(cfg, nowlater.NewFixedRate(3))
	if err != nil {
		t.Fatal(err)
	}
	l.Enqueue(1500)
	ex := l.Step(nowlater.Geometry{DistanceM: 20, AltitudeM: 10})
	if ex.Attempted == 0 {
		t.Fatal("no transmission")
	}
	// Minstrel construction through the facade.
	m := nowlater.NewMinstrel(cfg, nowlater.NewRNG(1))
	if m.Name() != "minstrel" {
		t.Fatalf("policy = %q", m.Name())
	}
	xs, err := nowlater.MeasureTrials(cfg, nil, nowlater.Geometry{DistanceM: 40, AltitudeM: 10}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 {
		t.Fatalf("trials = %d", len(xs))
	}
}

func TestFacadeStrategies(t *testing.T) {
	sc := nowlater.QuadrocopterBaseline()
	sc.D0M = 80
	sc.MdataBytes = 20e6
	now, err := sc.RunStrategy(nowlater.TransmitNow, 0, nowlater.DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	ship, err := sc.RunStrategy(nowlater.ShipThenTransmit, 40, nowlater.DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	if ship.CompletionS >= now.CompletionS {
		t.Fatalf("shipping (%v) should beat transmit-now (%v) for 20 MB", ship.CompletionS, now.CompletionS)
	}
}

func TestFacadeCustomThroughputTable(t *testing.T) {
	tab, err := nowlater.NewTableThroughput([]float64{20, 80}, []float64{20e6, 5e6})
	if err != nil {
		t.Fatal(err)
	}
	sc := nowlater.Scenario{
		D0M: 80, SpeedMPS: 5, MdataBytes: 10e6,
		Throughput: tab, MinDistanceM: nowlater.MinSeparationM,
	}
	m, err := nowlater.NewFailureModel(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	sc.Failure = m
	opt, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM >= 80 {
		t.Fatalf("steep table should pull dopt inward: %v", opt.DoptM)
	}
}

// TestFacadePolicy exercises the policy exports end to end: build a quick
// table, persist and reload it, and serve a decision that agrees with the
// exact optimizer.
func TestFacadePolicy(t *testing.T) {
	cfg := nowlater.AirplanePolicyConfig()
	cfg.Grid = nowlater.QuickPolicyGrid()
	tbl, err := nowlater.BuildPolicyTable(context.Background(), cfg, nowlater.PolicyBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "policy.nlpt")
	if err := nowlater.WritePolicyTable(tbl, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := nowlater.LoadMatchingPolicyTable(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nowlater.LoadPolicyTable(path); err != nil {
		t.Fatal(err)
	}
	eng, err := nowlater.NewPolicyEngine(loaded, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := nowlater.PolicyQuery{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: nowlater.AirplaneRho}
	dec, err := eng.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	sc := nowlater.AirplaneBaseline()
	want, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(dec.DoptM-want.DoptM) / want.DoptM; rel > 1e-3 {
		t.Fatalf("served dopt %.4f vs exact %.4f (rel %.2e)", dec.DoptM, want.DoptM, rel)
	}
}

// TestFacadeScenario compiles and runs a declarative three-vehicle
// scenario with a chaos kill and a failover receiver through the public
// facade — the shape the per-figure rigs could not express.
func TestFacadeScenario(t *testing.T) {
	spec := nowlater.ScenarioSpec{
		Name: "facade/failover",
		Seed: 7,
		Vehicles: []nowlater.ScenarioVehicleSpec{
			{ID: "ferry", Platform: "arducopter", Start: nowlater.Vec3{X: 60, Z: 10},
				Route: []nowlater.Vec3{{X: 25, Z: 10}}, SpeedMPS: 8},
			{ID: "rx", Platform: "arducopter", Start: nowlater.Vec3{Z: 10}, Hold: true},
			{ID: "backup", Platform: "arducopter", Start: nowlater.Vec3{X: 20, Y: 20, Z: 10}, Hold: true},
		},
		Transfers: []nowlater.ScenarioTransferSpec{{
			From: "ferry", To: "rx", SizeMB: 0.5, DeadlineS: 15,
			StartOnArrival: true, Reliable: true, AltTo: "backup",
		}},
		Chaos: []string{"vehicle fail rx 1"},
	}
	rt, err := nowlater.CompileScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transfers) != 1 || len(res.Vehicles) != 3 {
		t.Fatalf("shape: %+v", res)
	}
	tr := res.Transfers[0]
	if !tr.Rerouted || tr.To != "backup" {
		t.Fatalf("chaos kill did not force the failover: %+v", tr)
	}
	if tr.DeliveredMB() < 0.5 {
		t.Fatalf("failover lost data: delivered %.2f MB", tr.DeliveredMB())
	}
	if res.DurationS <= 0 {
		t.Fatalf("clock did not advance: %+v", res)
	}
}

// TestFacadeVerification drives the verification surface end to end: a
// generated spec verified differentially, the lockstep oracle matching the
// event-driven run fingerprint-for-fingerprint, and the event-storm guard
// surfacing its typed error.
func TestFacadeVerification(t *testing.T) {
	spec := nowlater.GenerateScenario(3)
	if err := spec.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	if err := nowlater.VerifyScenario(spec); err != nil {
		t.Fatal(err)
	}

	run := func(opts nowlater.ScenarioOptions) uint64 {
		rt, err := nowlater.CompileScenarioWithOptions(spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return nowlater.ScenarioResultFingerprint(res)
	}
	ev := run(nowlater.ScenarioOptions{CheckInvariants: true})
	ls := run(nowlater.ScenarioOptions{Lockstep: true})
	if ev != ls {
		t.Fatalf("lockstep fingerprint %016x != event-driven %016x", ls, ev)
	}

	// A starved event queue aborts with the typed storm error.
	many := nowlater.ScenarioSpec{Name: "facade/storm", Seed: 1, DurationS: 4}
	for i := 0; i < 6; i++ {
		many.Vehicles = append(many.Vehicles, nowlater.ScenarioVehicleSpec{
			ID: fmt.Sprintf("s%d", i), Platform: "arducopter",
			Start: nowlater.Vec3{Z: 10}, Route: []nowlater.Vec3{{X: 90, Z: 10}}, SpeedMPS: 9,
		})
	}
	rt, err := nowlater.CompileScenarioWithOptions(many, nowlater.ScenarioOptions{PendingLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); !errors.Is(err, nowlater.ErrEventStorm) {
		t.Fatalf("err = %v, want ErrEventStorm", err)
	}
}

// TestFacadeMissionSpec runs a minimal declarative fleet mission.
func TestFacadeMissionSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet mission is slow")
	}
	ms, err := nowlater.FleetFromSpec(nowlater.MissionSpec{
		Name: "facade/mission", Seed: 3, MaxSeconds: 1800,
		Vehicles: []nowlater.MissionVehicle{
			{ID: "scout-1", Platform: "arducopter", Role: nowlater.RoleScout,
				Start: nowlater.Vec3{X: 60, Z: 10}, SectorOrigin: nowlater.Vec3{X: 50},
				SectorWM: 30, SectorHM: 30, AltitudeM: 10, MaxScanLanes: 2},
			{ID: "relay-1", Platform: "arducopter", Role: nowlater.RoleRelay,
				Start: nowlater.Vec3{Z: 10}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ms.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deliveries) == 0 {
		t.Fatalf("mission delivered nothing: %+v", rep)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	cfg := nowlater.QuickExperimentConfig()
	if _, err := nowlater.Fig8(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := nowlater.Fig9(cfg); err != nil {
		t.Fatal(err)
	}
	tab := nowlater.Table1()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
}
