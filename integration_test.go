package nowlater_test

// End-to-end integration tests driving the whole stack through the public
// facade: missions, model extensions and the measurement→decision loop.

import (
	"bytes"
	"math"
	"testing"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/uav"
)

// TestEndToEndMission runs a complete SAR mission through the facade:
// scan → plan → ship → transfer, with no failures.
func TestEndToEndMission(t *testing.T) {
	if testing.Short() {
		t.Skip("mission simulation is slow")
	}
	cfg := nowlater.DefaultFleetConfig()
	m, err := nowlater.NewFailureModel(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scenario.Failure = m
	plan := mission.Plan{
		Sector:    mission.Sector{WidthM: 30, HeightM: 30},
		Camera:    mission.DefaultCamera(),
		AltitudeM: 10,
	}
	ms, err := nowlater.NewMission(cfg, []nowlater.UAVSpec{
		{
			ID: "scout", Platform: uav.Arducopter(), Role: nowlater.ScoutRole,
			Start: geo.Vec3{X: 170, Z: 10}, Plan: plan,
			SectorOrigin: geo.Vec3{X: 160, Y: 10}, MaxScanLanes: 2,
		},
		{ID: "base", Platform: uav.Arducopter(), Role: nowlater.RelayRole, Start: geo.Vec3{Z: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ms.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveryRatio() < 0.99 {
		t.Fatalf("mission delivered %v of the data", rep.DeliveryRatio())
	}
	d := rep.Deliveries[0]
	// The planner shipped the scout closer than where the link opened.
	if d.DoptM >= d.D0M {
		t.Fatalf("no rendezvous: dopt %v vs d0 %v", d.DoptM, d.D0M)
	}
}

// TestMeasureThenDecideLoop closes the loop the library is built for:
// probe the packet-level link, fit a table, optimize on it, and check the
// decision against the direct fitted model.
func TestMeasureThenDecideLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("link probing is slow")
	}
	cfg := nowlater.DefaultLinkConfig()
	var ds, mbps []float64
	for _, d := range []float64{20, 40, 60, 80, 100} {
		xs, err := nowlater.MeasureTrials(cfg, nil,
			nowlater.Geometry{DistanceM: d, AltitudeM: 10}, 6, 5)
		if err != nil {
			t.Fatal(err)
		}
		ds = append(ds, d)
		mbps = append(mbps, stats.MustMedian(xs))
	}
	// Round-trip through the CSV format, as linkprobe + the CLI would.
	var buf bytes.Buffer
	if err := core.WriteTableThroughputCSV(&buf, ds, mbps); err != nil {
		t.Fatal(err)
	}
	tab, err := nowlater.LoadThroughputCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sc := nowlater.QuadrocopterBaseline()
	sc.Throughput = tab
	opt, err := sc.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM < nowlater.MinSeparationM || opt.DoptM > sc.D0M {
		t.Fatalf("dopt = %v", opt.DoptM)
	}
	// The measured table is steep (quad link), so the decision should be
	// to move well inside d0 for the 56 MB batch.
	if opt.DoptM > 60 {
		t.Fatalf("measured-table dopt = %v, expected an inward move", opt.DoptM)
	}
}

// TestExtensionsThroughFacade exercises the Section 5/7 extensions.
func TestExtensionsThroughFacade(t *testing.T) {
	base := nowlater.AirplaneBaseline()
	// Non-stationary field.
	ns := nowlater.NonStationaryScenario{
		Scenario: base,
		Field:    nowlater.HazardZoneRho(nowlater.AirplaneRho, 0.05, 40, 140),
	}
	opt, err := ns.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := base.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.DoptM <= clean.DoptM {
		t.Fatalf("hazard should push the optimum outward: %v vs %v", opt.DoptM, clean.DoptM)
	}
	// Joint speed optimization.
	joint, err := base.OptimizeWithSpeed(3, 14, nowlater.SpeedCost{VRefMPS: 10, Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	if joint.VoptMPS < 3 || joint.VoptMPS > 14 {
		t.Fatalf("vopt = %v", joint.VoptMPS)
	}
	// Mixed strategy beats silent shipping to the same point.
	mixed, err := base.OptimizeMixed(nowlater.DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	pure, err := base.RunStrategy(nowlater.ShipThenTransmit, mixed.TargetDM, nowlater.DefaultSpeedPenalty())
	if err != nil {
		t.Fatal(err)
	}
	if mixed.CompletionS > pure.CompletionS+1e-9 || math.IsInf(mixed.CompletionS, 1) {
		t.Fatalf("mixed %v vs pure %v", mixed.CompletionS, pure.CompletionS)
	}
}

// TestARFThroughFacade: the vendor-style auto-rate is constructible and
// measurably worse than fixed rates on the fast-fading link.
func TestARFThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("link measurement is slow")
	}
	g := nowlater.Geometry{DistanceM: 60, AltitudeM: 90, RelSpeedMPS: 18}
	arf, err := nowlater.MeasureTrials(nowlater.DefaultLinkConfig(),
		func(*nowlater.RNG) nowlater.RatePolicy { return nowlater.NewARF() }, g, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := nowlater.MeasureTrials(nowlater.DefaultLinkConfig(),
		func(*nowlater.RNG) nowlater.RatePolicy { return nowlater.NewFixedRate(2) }, g, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MustMedian(fixed) <= stats.MustMedian(arf) {
		t.Fatalf("fixed MCS2 (%v) should beat ARF (%v) under motion",
			stats.MustMedian(fixed), stats.MustMedian(arf))
	}
}

// TestSurfaceMeasureThenMixedStrategy closes the s(d,v) loop: measure the
// surface on the packet-level link, then run the surface-aware mixed
// strategy on it.
func TestSurfaceMeasureThenMixedStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("surface measurement is slow")
	}
	distances := []float64{20, 50, 80}
	speeds := []float64{0, 4, 8}
	grid, err := nowlater.MeasureSurface(nowlater.DefaultLinkConfig(), distances, speeds, 10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	surf, err := nowlater.NewSurfaceThroughput(distances, speeds, grid)
	if err != nil {
		t.Fatal(err)
	}
	// The measured surface must show both declines: with distance at hover
	// and with speed at short range.
	if surf.At(20, 0) <= surf.At(80, 0) {
		t.Fatalf("no distance decline: %v vs %v", surf.At(20, 0), surf.At(80, 0))
	}
	if surf.At(20, 0) <= surf.At(20, 8) {
		t.Fatalf("no speed decline: %v vs %v", surf.At(20, 0), surf.At(20, 8))
	}
	sc := nowlater.QuadrocopterBaseline()
	sc.D0M = 80
	sc.MdataBytes = 20e6
	sc.Throughput = surf
	out, err := sc.RunMixedStrategySurface(20, surf)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(out.CompletionS, 1) {
		t.Fatalf("surface mixed strategy never finished: %+v", out)
	}
}
