// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the underlying experiment and reporting its
// headline metric), plus ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
package nowlater_test

import (
	"math"
	"testing"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/experiments"
)

func benchCfg() experiments.Config { return experiments.QuickConfig() }

// BenchmarkTable1Platforms regenerates the platform feature table.
func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := nowlater.Table1()
		if len(tab.Rows) != 6 {
			b.Fatal("table shape changed")
		}
	}
}

// BenchmarkFig1StrategyRace regenerates the strategy race; reports the
// best hover-and-transmit completion and the analytic crossover.
func BenchmarkFig1StrategyRace(b *testing.B) {
	var res experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	best := math.Inf(1)
	for _, st := range res.Strategies {
		if st.Name != "moving" && st.CompletionS < best {
			best = st.CompletionS
		}
	}
	b.ReportMetric(best, "best-completion-s")
	b.ReportMetric(res.AnalyticCrossoverMB, "crossover-MB")
}

// BenchmarkFig4GPSTraces regenerates the flight traces; reports the span
// of pairwise airplane distances.
func BenchmarkFig4GPSTraces(b *testing.B) {
	var res experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	maxD := 0.0
	for _, d := range res.AirplaneDistances {
		maxD = math.Max(maxD, d)
	}
	b.ReportMetric(maxD, "max-distance-m")
	b.ReportMetric(float64(len(res.Airplanes[0].Fixes)), "fixes")
}

// BenchmarkFig5AirplaneThroughput regenerates the throughput-vs-distance
// boxplots; reports the fitted log2 law against the paper's (−5.56, 49).
func BenchmarkFig5AirplaneThroughput(b *testing.B) {
	var res experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fit.A, "fit-A-mbps-per-octave")
	b.ReportMetric(res.Fit.B, "fit-B-mbps")
	b.ReportMetric(res.Fit.R2, "fit-R2")
}

// BenchmarkFig6FixedVsAuto regenerates the rate-control comparison;
// reports the mean best-fixed/auto-rate advantage (paper: ≥2×).
func BenchmarkFig6FixedVsAuto(b *testing.B) {
	var res experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	n := 0
	for _, a := range res.MedianAdvantage() {
		if !math.IsInf(a, 1) {
			sum += a
			n++
		}
	}
	b.ReportMetric(sum/float64(n), "best-over-auto")
}

// BenchmarkFig7QuadThroughput regenerates the quadrocopter panels; reports
// the hover fit and the hover/moving collapse.
func BenchmarkFig7QuadThroughput(b *testing.B) {
	var res experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HoverFit.A, "hover-fit-A")
	b.ReportMetric(res.HoverFit.B, "hover-fit-B")
	if len(res.Speeds) > 0 {
		v0 := res.Speeds[0].Box.Median
		vN := res.Speeds[len(res.Speeds)-1].Box.Median
		if vN > 0 {
			b.ReportMetric(v0/vN, "hover-over-fast")
		}
	}
}

// BenchmarkFig8UtilityCurves regenerates U(d) for both baselines; reports
// how far dopt marches as rho grows (the figure's qualitative message).
func BenchmarkFig8UtilityCurves(b *testing.B) {
	var res experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	air := res.Airplane
	b.ReportMetric(air[len(air)-1].DoptM-air[0].DoptM, "dopt-shift-m")
}

// BenchmarkFig9Sweep regenerates the Mdata × speed sweep; reports the
// fraction of cells pinned at the minimum distance.
func BenchmarkFig9Sweep(b *testing.B) {
	var res experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	pinned := 0
	for _, p := range res.Points {
		if p.AtMinimum {
			pinned++
		}
	}
	b.ReportMetric(float64(pinned)/float64(len(res.Points)), "at-minimum-fraction")
}

// --- Ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblationAggregation: A-MPDU depth 1 vs 14.
func BenchmarkAblationAggregation(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationAggregation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[len(res.Values)-1]/res.Values[0], "agg14-over-agg1")
}

// BenchmarkAblationPHYFeatures: channel bonding and short GI.
func BenchmarkAblationPHYFeatures(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationPHYFeatures(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[3]/res.Values[0], "40sgi-over-20lgi")
}

// BenchmarkAblationOptimizer: hybrid optimizer vs 1 cm brute force.
func BenchmarkAblationOptimizer(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationOptimizer(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[0], "worst-relative-gap")
}

// BenchmarkAblationSpeedFading: speed-coupled channel on/off.
func BenchmarkAblationSpeedFading(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationSpeedFading(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[0], "coupled-collapse")
	b.ReportMetric(res.Values[1], "decoupled-collapse")
}

// BenchmarkAblationFailureModel: exponential-in-distance vs -in-time.
func BenchmarkAblationFailureModel(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationFailureModel(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[0], "dopt-exp-distance-m")
	b.ReportMetric(res.Values[1], "dopt-exp-time-m")
}

// --- Micro-benchmarks of the core primitives ------------------------------

// BenchmarkOptimize measures one scenario solve.
func BenchmarkOptimize(b *testing.B) {
	sc := nowlater.AirplaneBaseline()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkStep measures one A-MPDU exchange on the packet-level link.
func BenchmarkLinkStep(b *testing.B) {
	l, err := nowlater.NewLink(nowlater.DefaultLinkConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	g := nowlater.Geometry{DistanceM: 60, AltitudeM: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.QueuedBytes() < 64*1500 {
			l.Enqueue(256 * 1500)
		}
		l.Step(g)
	}
}

// BenchmarkAblationAutoRate: Minstrel vs ARF vs best fixed MCS on a moving
// aerial link.
func BenchmarkAblationAutoRate(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationAutoRate(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[0], "minstrel-mbps")
	b.ReportMetric(res.Values[1], "arf-mbps")
	b.ReportMetric(res.Values[2], "best-fixed-mbps")
	b.ReportMetric(res.Values[3], "oracle-mbps")
}

// BenchmarkMissionLevel: system-level payoff of the rendezvous policy
// (extension experiment; not a paper figure).
func BenchmarkMissionLevel(b *testing.B) {
	var res experiments.MissionLevelResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.MissionLevel(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NaiveMakespanS, "naive-makespan-s")
	b.ReportMetric(res.RendezvousMakespanS, "rendezvous-makespan-s")
	b.ReportMetric(res.RendezvousDeliveryRatio, "rendezvous-delivery-ratio")
}

// BenchmarkAblationTwoRay: fitted throughput slope under the explicit
// two-ray ground model vs the calibrated log-distance law.
func BenchmarkAblationTwoRay(b *testing.B) {
	var res experiments.AblationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationTwoRay(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Values[0], "slope-log-distance")
	b.ReportMetric(res.Values[1], "slope-two-ray")
}
