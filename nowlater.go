// Package nowlater is a Go reproduction of "Now or Later? — Delaying Data
// Transfer in Time-Critical Aerial Communication" (Asadpour, Giustiniano,
// Hummel, Heimlicher, Egli; ACM CoNEXT 2013).
//
// A UAV that has gathered a batch of mission data (search-and-rescue
// imagery) and comes into 802.11n range of its receiver at distance d0 can
// transmit *now*, or ship itself closer and transmit *later* at a faster
// link. The paper models the choice as a delayed-gratification problem
//
//	U(d) = e^{−ρ(d0−d)} / Cdelay(d),   Cdelay(d) = (d0−d)/v + Mdata/s(d)
//
// and backs the throughput law s(d) with aerial measurements from two
// platforms (fixed-wing Swinglets and Arducopter quadrocopters).
//
// This package is the public facade over the full reproduction stack:
//
//   - the delayed-gratification model and optimizer (Scenario, Optimize);
//   - packet-level 802.11n link simulation over a calibrated aerial
//     channel (Link, MeasureTrials) with fixed and Minstrel rate control;
//   - platform, autopilot, GPS, telemetry and central-planner substrates;
//   - the experiment harness that regenerates every table and figure of
//     the paper (Experiments* functions).
//
// Quick start:
//
//	sc := nowlater.AirplaneBaseline()
//	opt, err := sc.Optimize()
//	// opt.DoptM is the distance at which to transmit; opt.CommDelay the
//	// expected delivery delay; opt.Survival the shipping-leg survival.
package nowlater

import (
	"context"
	"io"

	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/fleet"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/link"
	"github.com/nowlater/nowlater/internal/mission"
	"github.com/nowlater/nowlater/internal/nlclient"
	"github.com/nowlater/nowlater/internal/nlserver"
	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/phy"
	"github.com/nowlater/nowlater/internal/policy"
	"github.com/nowlater/nowlater/internal/rate"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/scenariogen"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/transport"
)

// Version identifies the library release.
const Version = "1.0.0"

// MinSeparationM is the paper's anti-collision floor between UAVs (20 m).
const MinSeparationM = core.MinSeparationM

// --- Delayed-gratification model (the paper's contribution) -------------

// Scenario is one delayed-gratification decision instance: distance d0 at
// which the link opens, shipping speed, batch size, failure model and the
// throughput-vs-distance law.
type Scenario = core.Scenario

// Optimum is the solved decision: the transmit distance dopt, its utility,
// communication delay and shipping-leg survival probability.
type Optimum = core.Optimum

// Point is one sample of a utility curve U(d).
type Point = core.Point

// ThroughputModel is the hover-and-transmit throughput law s(d) in bits/s.
type ThroughputModel = core.ThroughputModel

// LogFitThroughput is the paper's fitted law s(d) = 10⁶·(A·log2 d + B).
type LogFitThroughput = core.LogFitThroughput

// TableThroughput interpolates measured (distance, throughput) samples.
type TableThroughput = core.TableThroughput

// NewTableThroughput builds an interpolating throughput model from sorted
// samples.
func NewTableThroughput(distances, bps []float64) (*TableThroughput, error) {
	return core.NewTableThroughput(distances, bps)
}

// AirplaneFit returns the paper's airplane throughput fit
// (−5.56·log2 d + 49 Mb/s, R² = 0.9).
func AirplaneFit() LogFitThroughput { return core.AirplaneFit() }

// QuadrocopterFit returns the paper's quadrocopter fit
// (−10.5·log2 d + 73 Mb/s, R² = 0.96).
func QuadrocopterFit() LogFitThroughput { return core.QuadrocopterFit() }

// AirplaneBaseline returns the paper's airplane scenario (Section 4):
// 28 MB, 10 m/s, ρ = 1.11e−4, d0 = 300 m.
func AirplaneBaseline() Scenario { return core.AirplaneBaseline() }

// QuadrocopterBaseline returns the paper's quadrocopter scenario
// (Section 4): 56.2 MB, 4.5 m/s, ρ = 2.46e−4, d0 = 100 m.
func QuadrocopterBaseline() Scenario { return core.QuadrocopterBaseline() }

// Strategy identifies a delivery strategy (Fig. 1).
type Strategy = core.Strategy

// The delivery strategies the paper compares.
const (
	TransmitNow      = core.TransmitNow
	ShipThenTransmit = core.ShipThenTransmit
	MoveAndTransmit  = core.MoveAndTransmit
)

// StrategyOutcome is a strategy run's completion time and delivery series.
type StrategyOutcome = core.Outcome

// SpeedPenalty scales hover throughput under relative motion.
type SpeedPenalty = core.SpeedPenalty

// DefaultSpeedPenalty matches the paper's Fig. 1 "moving" realization.
func DefaultSpeedPenalty() SpeedPenalty { return core.DefaultSpeedPenalty() }

// --- Failure model -------------------------------------------------------

// FailureModel is the exponential-in-distance failure law δ = e^{−ρ·dist}.
type FailureModel = failure.Model

// Paper baseline failure rates (per metre travelled).
const (
	AirplaneRho     = failure.AirplaneRho
	QuadrocopterRho = failure.QuadrocopterRho
)

// NewFailureModel validates and wraps a failure rate ρ.
func NewFailureModel(rho float64) (FailureModel, error) { return failure.NewModel(rho) }

// FailureFromRange derives ρ from a battery range in metres (ρ = 1/range).
func FailureFromRange(rangeM float64) (FailureModel, error) { return failure.FromRange(rangeM) }

// --- Sensing mission -----------------------------------------------------

// Camera is the on-board imager model (FOV geometry and image size).
type Camera = mission.Camera

// SensingPlan is a sector-scanning assignment; DataBytes() is the paper's
// Mdata.
type SensingPlan = mission.Plan

// Sector is the area one UAV is responsible for scanning.
type Sector = mission.Sector

// DefaultCamera returns the paper's reference camera (1280×720, 65° lens).
func DefaultCamera() Camera { return mission.DefaultCamera() }

// AirplaneSensingPlan is the paper's airplane scan (500×500 m @ 70 m →
// ≈28 MB).
func AirplaneSensingPlan() SensingPlan { return mission.AirplanePlan() }

// QuadrocopterSensingPlan is the paper's quadrocopter scan (100×100 m @
// 10 m → ≈56.2 MB).
func QuadrocopterSensingPlan() SensingPlan { return mission.QuadrocopterPlan() }

// --- Packet-level aerial link --------------------------------------------

// Link is one simulated point-to-point aerial 802.11n link (channel + PHY
// + MAC + rate control).
type Link = link.Link

// LinkConfig assembles a link; DefaultLinkConfig is the paper's radio over
// the calibrated aerial channel.
type LinkConfig = link.Config

// Geometry is the instantaneous link geometry (distance, altitude,
// relative speed).
type Geometry = link.Geometry

// Measurement is an iperf-style saturation measurement result.
type Measurement = link.Measurement

// DefaultLinkConfig returns the calibrated link configuration.
func DefaultLinkConfig() LinkConfig { return link.DefaultConfig() }

// NewLink builds a link; a nil policy selects Minstrel auto-rate.
func NewLink(cfg LinkConfig, policy RatePolicy) (*Link, error) { return link.New(cfg, policy) }

// MeasureTrials runs independent saturation measurements at one geometry,
// returning throughput samples in Mb/s (the boxplot columns of Figs 5–7).
func MeasureTrials(cfg LinkConfig, newPolicy func(rng *RNG) RatePolicy,
	g Geometry, duration float64, n int) ([]float64, error) {
	return link.MeasureTrials(cfg, newPolicy, g, duration, n)
}

// MeasureTrialsWorkers is MeasureTrials with an explicit worker-pool size
// (≤0 = one per core). The samples are bit-identical for any worker count.
func MeasureTrialsWorkers(cfg LinkConfig, newPolicy func(rng *RNG) RatePolicy,
	g Geometry, duration float64, n, workers int) ([]float64, error) {
	return link.MeasureTrialsWorkers(cfg, newPolicy, g, duration, n, workers)
}

// RatePolicy selects the MCS per transmission and learns from feedback.
type RatePolicy = rate.Policy

// MCS is an 802.11n modulation-and-coding-scheme index (0–15).
type MCS = phy.MCS

// NewFixedRate returns the fixed-MCS policy of the paper's Fig. 6 sweeps.
func NewFixedRate(m MCS) RatePolicy { return rate.NewFixed(m) }

// NewMinstrel returns the sampling auto-rate policy (the paper's
// misbehaving "autorate") with default parameters.
func NewMinstrel(cfg LinkConfig, rng *RNG) RatePolicy {
	return rate.NewMinstrel(rate.DefaultMinstrelParams(), cfg.PHY, rng)
}

// NewARF returns the classic Auto Rate Fallback policy, the vendor-driver
// style alternative whose fast-fading oscillation is one explanation for
// the paper's auto-rate losses.
func NewARF() RatePolicy { return rate.NewARF(rate.DefaultARFParams()) }

// NewOracle returns the omniscient rate control for a link configuration:
// it sees the instantaneous SNR and upper-bounds any realizable policy.
func NewOracle(cfg LinkConfig) RatePolicy { return link.NewOraclePolicy(cfg) }

// RNG is the deterministic random source used across the simulator.
type RNG = stats.RNG

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// --- Experiment harness ---------------------------------------------------

// ExperimentConfig scales the figure-regeneration workloads.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig reproduces figures at publication quality;
// QuickExperimentConfig is a fast smoke-scale variant.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig returns the reduced workload.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }

// Experiment result types, one per table/figure of the paper.
type (
	Table1Result = experiments.Table1Result
	Fig1Result   = experiments.Fig1Result
	Fig4Result   = experiments.Fig4Result
	Fig5Result   = experiments.Fig5Result
	Fig6Result   = experiments.Fig6Result
	Fig7Result   = experiments.Fig7Result
	Fig8Result   = experiments.Fig8Result
	Fig9Result   = experiments.Fig9Result
)

// Table1 regenerates the platform feature table.
func Table1() Table1Result { return experiments.Table1() }

// Fig1 reproduces the strategy race (transmitted data vs time).
func Fig1(cfg ExperimentConfig) (Fig1Result, error) { return experiments.Fig1(cfg) }

// Fig4 reproduces the GPS traces of both platforms.
func Fig4(cfg ExperimentConfig) (Fig4Result, error) { return experiments.Fig4(cfg) }

// Fig5 reproduces airplane throughput vs distance (auto rate).
func Fig5(cfg ExperimentConfig) (Fig5Result, error) { return experiments.Fig5(cfg) }

// Fig6 reproduces best-fixed-MCS vs auto-rate between airplanes.
func Fig6(cfg ExperimentConfig) (Fig6Result, error) { return experiments.Fig6(cfg) }

// Fig7 reproduces the quadrocopter panels (hover, moving, speed sweep).
func Fig7(cfg ExperimentConfig) (Fig7Result, error) { return experiments.Fig7(cfg) }

// Fig8 reproduces U(d) across failure rates for both baselines.
func Fig8(cfg ExperimentConfig) (Fig8Result, error) { return experiments.Fig8(cfg) }

// Fig9 reproduces the Mdata × speed sweep of the airplane scenario.
func Fig9(cfg ExperimentConfig) (Fig9Result, error) { return experiments.Fig9(cfg) }

// --- Model extensions (the paper's Sections 5 and 7 futures) -------------

// RhoField is a position-dependent failure rate along the shipping line.
type RhoField = core.RhoField

// NonStationaryScenario integrates a RhoField in the discount —
// the paper's "non-stationary failure rate" extension.
type NonStationaryScenario = core.NonStationaryScenario

// ConstantRho lifts a scalar failure rate into a field.
func ConstantRho(rho float64) RhoField { return core.ConstantRho(rho) }

// LinearRho varies linearly from rho0 at the receiver to rho1 at span.
func LinearRho(rho0, rho1, span float64) RhoField { return core.LinearRho(rho0, rho1, span) }

// HazardZoneRho elevates the rate inside a band on the approach.
func HazardZoneRho(background, elevated, lo, hi float64) RhoField {
	return core.HazardZoneRho(background, elevated, lo, hi)
}

// SpeedCost makes the per-metre failure rate speed-dependent, enabling the
// joint (distance, speed) optimization of Scenario.OptimizeWithSpeed.
type SpeedCost = core.SpeedCost

// SpeedOptimum is the joint (dopt, vopt) decision.
type SpeedOptimum = core.SpeedOptimum

// MixedOutcome is the ship-while-transmitting strategy's result
// (Scenario.RunMixedStrategy / OptimizeMixed).
type MixedOutcome = core.MixedOutcome

// RepositionOptimum is the decision when the post-delivery return leg is
// charged (Scenario.OptimizeWithReturn; the paper's Section 7
// "re-positioning cost" extension).
type RepositionOptimum = core.RepositionOptimum

// LoadThroughputCSV reads a measured (distance_m, throughput_mbps) table —
// e.g. from cmd/linkprobe — into a ThroughputModel.
func LoadThroughputCSV(r io.Reader) (*TableThroughput, error) {
	return core.LoadTableThroughputCSV(r)
}

// --- Fleet missions --------------------------------------------------------

// FleetConfig parameterizes a multi-UAV mission.
type FleetConfig = fleet.Config

// UAVSpec declares one mission participant (scout or relay).
type UAVSpec = fleet.UAVSpec

// Mission is a configured multi-UAV run on the discrete-event engine.
type Mission = fleet.Mission

// MissionReport summarizes delivery latency, data delivered and failures.
type MissionReport = fleet.Report

// Mission roles.
const (
	ScoutRole = fleet.Scout
	RelayRole = fleet.Relay
)

// DefaultFleetConfig uses the paper's quadrocopter planning scenario.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// NewMission assembles a multi-UAV mission.
func NewMission(cfg FleetConfig, specs []UAVSpec) (*Mission, error) { return fleet.New(cfg, specs) }

// --- Declarative scenarios -------------------------------------------------

// ControlTickS is the autopilot control-loop period (seconds) — the single
// integration sub-tick every vehicle advances by.
const ControlTickS = scenario.ControlTickS

// MissionTickS is the mission-logic re-evaluation period (seconds).
const MissionTickS = scenario.MissionTickS

// Vec3 is the Cartesian position/velocity vector (metres, metres/second)
// scenario specs place vehicles with.
type Vec3 = geo.Vec3

// ScenarioSpec is one complete declarative flight scenario: vehicles,
// trajectories, link, workloads, chaos script and decision policy. The
// paper's figures are instances of this shape; arbitrary new scenarios
// (more vehicles, mid-flight kills, failover receivers) are a JSON file —
// see examples/scenario/.
type ScenarioSpec = scenario.Spec

// ScenarioVehicleSpec declares one vehicle and its trajectory.
type ScenarioVehicleSpec = scenario.VehicleSpec

// ScenarioLinkSpec configures the scenario's packet-level radio.
type ScenarioLinkSpec = scenario.LinkSpec

// ScenarioTrafficSpec is a windowed saturation workload (Figs 5–7).
type ScenarioTrafficSpec = scenario.TrafficSpec

// ScenarioTransferSpec is a reliable batch delivery, optionally routed
// through the now-or-later decision and a fallback receiver.
type ScenarioTransferSpec = scenario.TransferSpec

// ScenarioDecisionSpec selects the decision engine ("exact" or "table")
// and failure rate for a transfer.
type ScenarioDecisionSpec = scenario.DecisionSpec

// ScenarioRuntime executes a compiled ScenarioSpec on the discrete-event
// engine under the single-clock contract.
type ScenarioRuntime = scenario.Runtime

// ScenarioResult is the recorded outcome of one scenario run.
type ScenarioResult = scenario.Result

// CompileScenario validates a spec and builds its runtime.
func CompileScenario(spec ScenarioSpec) (*ScenarioRuntime, error) { return scenario.Compile(spec) }

// ScenarioOptions selects scenario execution modes: the lockstep reference
// oracle (no lazy integration, no elision), runtime invariant checking,
// and an explicit event-queue bound.
type ScenarioOptions = scenario.Options

// ErrEventStorm is the typed failure a Runtime surfaces when its bounded
// event queue overflows — a runaway self-scheduling loop, aborted
// gracefully with partial results preserved.
var ErrEventStorm = sim.ErrEventStorm

// CompileScenarioWithOptions validates a spec and builds its runtime in
// the requested execution mode.
func CompileScenarioWithOptions(spec ScenarioSpec, opts ScenarioOptions) (*ScenarioRuntime, error) {
	return scenario.CompileWithOptions(spec, opts)
}

// ScenarioResultFingerprint hashes a run's outcome (FNV-1a over the exact
// float bits), excluding the Spec identity — the differential-verification
// comparator: two runs agree iff their fingerprints match.
func ScenarioResultFingerprint(r ScenarioResult) uint64 { return scenario.ResultFingerprint(r) }

// ScenarioProgram is the compiler's typed intermediate form: a validated,
// fully-resolved scenario — integer vehicle handles, time-sorted chaos
// kills, materialized request arrivals — that CompileScenario internally
// produces before linking a runtime. Resolve once, link (and run) as many
// runtimes as needed.
type ScenarioProgram = scenario.Program

// ScenarioTableCache shares lazily-built policy decision tables across
// scenario runtimes, keyed by platform. Safe for concurrent use; sharing a
// cache never changes results (a table is a pure function of its platform).
type ScenarioTableCache = scenario.TableCache

// NewScenarioTableCache builds an empty shared policy-table cache.
func NewScenarioTableCache() *ScenarioTableCache { return scenario.NewTableCache() }

// ResolveScenario validates and lowers a spec to its intermediate Program.
func ResolveScenario(spec ScenarioSpec) (*ScenarioProgram, error) { return scenario.Resolve(spec) }

// LinkScenario builds a runtime from a resolved Program; Compile(spec) is
// exactly Link(Resolve(spec)).
func LinkScenario(p *ScenarioProgram) (*ScenarioRuntime, error) { return scenario.Link(p) }

// LinkScenarioWithOptions links a resolved Program in the requested
// execution mode (lockstep oracle, invariant checking, shared TableCache).
func LinkScenarioWithOptions(p *ScenarioProgram, opts ScenarioOptions) (*ScenarioRuntime, error) {
	return scenario.LinkWithOptions(p, opts)
}

// CompileScenarioBatch resolves and links a sweep's specs together, all
// runtimes sharing one policy TableCache (opts.Tables, allocated when nil) —
// the batched path experiment sweeps and corpus CI replay through.
func CompileScenarioBatch(specs []ScenarioSpec, opts ScenarioOptions) ([]*ScenarioRuntime, error) {
	return scenario.CompileBatch(specs, opts)
}

// GenerateScenario emits a random-but-valid ScenarioSpec deterministically
// from a seed — the adversarial generator behind the committed corpus
// (internal/scenariogen/testdata/corpus).
func GenerateScenario(seed int64) ScenarioSpec { return scenariogen.Generate(seed) }

// VerifyScenario runs one Spec through the differential verification
// harness — event-driven vs lockstep oracle, chaos-permutation and
// duration-extension metamorphic transforms, runtime invariants — and
// returns nil when every oracle agrees.
func VerifyScenario(spec ScenarioSpec) error { return scenariogen.Verify(spec) }

// LoadScenarioSpec reads and validates a JSON scenario file
// (cmd/uavsim -scenario).
func LoadScenarioSpec(path string) (ScenarioSpec, error) { return scenario.Load(path) }

// MissionSpec is the declarative form of a multi-UAV fleet mission.
type MissionSpec = scenario.MissionSpec

// MissionVehicle declares one fleet participant (scout or relay).
type MissionVehicle = scenario.MissionVehicle

// Fleet roles accepted by MissionVehicle.Role.
const (
	RoleScout = scenario.RoleScout
	RoleRelay = scenario.RoleRelay
)

// FleetFromSpec compiles a declarative MissionSpec into a runnable
// Mission (the cmd/experiments chaos step builds its trials this way).
func FleetFromSpec(ms MissionSpec) (*Mission, error) { return fleet.FromSpec(ms) }

// --- Multi-hop ferrying ----------------------------------------------------

// RelayResult is the outcome of a store-and-forward chain transfer.
type RelayResult = transport.RelayResult

// GeometryFunc reports a hop's geometry at a simulation time.
type GeometryFunc = transport.GeometryFunc

// RelayChain transfers a batch across source→relay…→sink links sharing one
// half-duplex channel; two hops cost ≈2× one hop, the relay penalty the
// paper's related work measured.
func RelayChain(links []*Link, bytes int, deadlineS float64, geoms []GeometryFunc) (RelayResult, error) {
	return transport.RelayChain(links, bytes, deadlineS, geoms)
}

// TransferBatch reliably delivers a batch over one link while the geometry
// evolves (the Fig 1 workload).
func TransferBatch(l *Link, bytes int, deadlineS float64, geom GeometryFunc) (transport.BatchResult, error) {
	return transport.TransferBatch(l, transport.BatchConfig{
		Bytes: bytes, DeadlineS: deadlineS, Reliable: true,
	}, geom)
}

// --- Chaos layer: fault injection and resilience ---------------------------

// ChaosSchedule is a scripted, seedable fault plan: telemetry loss and
// blackouts, GPS outages and degradation, link outages and deep fades,
// and mid-flight vehicle failures — all declared on half-open time
// windows [StartS, EndS) and replayed deterministically. Attach one to a
// FleetConfig (Chaos field) or to cmd/uavsim via -chaos <file>.
type ChaosSchedule = chaos.Schedule

// ChaosWindow is a half-open activity window [StartS, EndS).
type ChaosWindow = chaos.Window

// The fault declarations a ChaosSchedule is built from.
type (
	TelemetryFault = chaos.TelemetryFault
	GPSFault       = chaos.GPSFault
	LinkFault      = chaos.LinkFault
	VehicleFault   = chaos.VehicleFault
)

// ChaosWildcard targets every vehicle in ID-matched fault classes.
const ChaosWildcard = chaos.Wildcard

// ParseChaos reads the chaos text format (one fault per line; see
// internal/chaos.Parse for the grammar) and validates the schedule.
func ParseChaos(r io.Reader) (*ChaosSchedule, error) { return chaos.Parse(r) }

// ParseChaosString parses the chaos text format from a string.
func ParseChaosString(text string) (*ChaosSchedule, error) { return chaos.ParseString(text) }

// LoadChaos reads and parses a chaos schedule file.
func LoadChaos(path string) (*ChaosSchedule, error) { return chaos.Load(path) }

// ResilientConfig tunes a fault-tolerant batch transfer: per-attempt
// timeout, capped exponential backoff with seeded jitter, and resumable
// partial batches.
type ResilientConfig = transport.ResilientConfig

// ResilientResult is a resilient transfer's outcome (attempt count,
// backoff spent, whether delivery spanned attempts).
type ResilientResult = transport.ResilientResult

// DefaultResilientConfig returns the mission-stack tuning: 30 s
// attempts, 1→16 s backoff with 20% jitter.
func DefaultResilientConfig(bytes int, deadlineS float64) ResilientConfig {
	return transport.DefaultResilientConfig(bytes, deadlineS)
}

// ResilientTransfer is the survivable counterpart of TransferBatch: it
// rides out link outages and deep fades by slicing the transfer into
// attempts, backing off between them, and resuming the delivered prefix.
func ResilientTransfer(l *Link, cfg ResilientConfig, geom GeometryFunc) (ResilientResult, error) {
	return transport.ResilientTransfer(l, cfg, geom)
}

// Survivability experiment result types (cmd/experiments -fig chaos).
type (
	SurvivabilityPoint  = experiments.SurvivabilityPoint
	SurvivabilityResult = experiments.SurvivabilityResult
)

// Survivability runs the chaos experiment: delivery ratio and median
// delay versus fault intensity, the naive and resilient postures paired
// on identical seeds and schedules.
func Survivability(cfg ExperimentConfig) (SurvivabilityResult, error) {
	return experiments.Survivability(cfg)
}

// SurfaceThroughput is a measured s(d, v) surface (bilinear interpolation)
// — the two-dimensional empirical characterization mixed strategies need
// (the paper's Section 3.2 extension).
type SurfaceThroughput = core.SurfaceThroughput

// NewSurfaceThroughput builds a surface from a distances×speeds grid of
// bits/s samples.
func NewSurfaceThroughput(distances, speeds []float64, bps [][]float64) (*SurfaceThroughput, error) {
	return core.NewSurfaceThroughput(distances, speeds, bps)
}

// MeasureSurface maps s(d, v) on the packet-level link: median saturation
// throughput per (distance, speed) cell.
func MeasureSurface(cfg LinkConfig, distances, speeds []float64, alt, duration float64,
	trials int) ([][]float64, error) {
	return link.MeasureSurface(cfg, distances, speeds, alt, duration, trials)
}

// --- Policy engine: precomputed dopt tables served online ------------------
//
// The per-decision optimization is a pure function of (d0, v, Mdata, ρ) —
// and, through the model's structure, of only (d0, v·Mdata, ρ). The policy
// layer precomputes that decision surface on a lattice once, persists it as
// a versioned checksummed file, and serves lookups in sub-microsecond time
// (cmd/nowlaterd is the HTTP daemon over the same engine).

// PolicyQuery is one decision request: the link-opening distance, shipping
// speed, batch size and failure rate.
type PolicyQuery = policy.Query

// PolicyGrid is the 3-axis lattice (d0 × v·Mdata × ρ) a table covers.
type PolicyGrid = policy.Grid

// PolicyConfig binds a throughput fit, separation floor and grid — the
// complete identity of one precomputed table.
type PolicyConfig = policy.Config

// PolicyTable is an immutable precomputed decision surface with an
// interpolate-then-polish Lookup.
type PolicyTable = policy.Table

// PolicyEngine serves decisions: LRU cache, then table lookup, then the
// exact optimizer for out-of-grid or regime-boundary queries. Safe for
// concurrent use; its OptimizeScenario method slots into the mission
// planner (internal/planner Config.Optimizer) as the optimizer fast path.
type PolicyEngine = policy.Engine

// PolicyDecision is an answered query, tagged with the serving path.
type PolicyDecision = policy.Decision

// PolicyBuildOptions tunes a table build (workers, checkpoint journal).
type PolicyBuildOptions = policy.BuildOptions

// AirplanePolicyConfig is the default serving table: the airplane fit over
// the full serving envelope.
func AirplanePolicyConfig() PolicyConfig { return policy.AirplaneConfig() }

// QuadrocopterPolicyConfig scales the lattice to the quadrocopter's range.
func QuadrocopterPolicyConfig() PolicyConfig { return policy.QuadrocopterConfig() }

// QuickPolicyGrid is a coarse smoke-scale lattice for tests and examples.
func QuickPolicyGrid() PolicyGrid { return policy.QuickGrid() }

// BuildPolicyTable precomputes a decision table (deterministic for any
// worker count; resumable via PolicyBuildOptions.Checkpoint).
func BuildPolicyTable(ctx context.Context, cfg PolicyConfig, opts PolicyBuildOptions) (*PolicyTable, error) {
	return policy.Build(ctx, cfg, opts)
}

// WritePolicyTable atomically persists a table (versioned, CRC-checked).
func WritePolicyTable(t *PolicyTable, path string) error { return t.WriteFile(path) }

// LoadPolicyTable reads a table file, rejecting corruption and version
// drift with typed errors.
func LoadPolicyTable(path string) (*PolicyTable, error) { return policy.Load(path) }

// LoadMatchingPolicyTable additionally rejects a table whose config
// fingerprint differs from the expected one.
func LoadMatchingPolicyTable(path string, want PolicyConfig) (*PolicyTable, error) {
	return policy.LoadMatching(path, want)
}

// NewPolicyEngine wraps a table with an LRU of the given size (0 selects
// the default, negative disables caching).
func NewPolicyEngine(t *PolicyTable, cacheSize int) (*PolicyEngine, error) {
	return policy.NewEngine(t, cacheSize)
}

// PolicyCheckResult cross-checks the precomputed tables against the Fig 8
// and Fig 9 sweep optima and times table serving against exact solving.
type PolicyCheckResult = experiments.PolicyCheckResult

// PolicyCheck runs the cross-check with the default serving tables
// (cmd/experiments -only policy).
func PolicyCheck(cfg ExperimentConfig) (PolicyCheckResult, error) {
	return experiments.PolicyCheck(cfg)
}

// --- Overload hardening: admission control, degraded serving, clients ------
//
// The decision service survives saturation in layers: an admission
// controller bounds HTTP concurrency and sheds with Retry-After, a circuit
// breaker around the exact-optimizer fallback flips the engine to
// nearest-table answers marked Degraded, and the client rides through
// faults with deadline propagation, a retry budget and hedging
// (cmd/nowlaterd serves; cmd/nowlaterload measures).

// AdmissionConfig tunes the HTTP-layer admission controller (bounded
// in-flight plus a short latency-bounded wait queue).
type AdmissionConfig = overload.AdmissionConfig

// Admission is the bounded-concurrency gate; nil admits everything.
type Admission = overload.Admission

// AdmissionStats snapshots the gate's gauges and shed counters.
type AdmissionStats = overload.AdmissionStats

// ShedError is an admission refusal carrying the server's Retry-After
// backoff hint (HTTP 429 upstream).
type ShedError = overload.ShedError

// NewAdmission builds an admission controller; zero fields take defaults.
func NewAdmission(cfg AdmissionConfig) *Admission { return overload.NewAdmission(cfg) }

// DefaultAdmissionConfig sizes the controller for the decision service.
func DefaultAdmissionConfig() AdmissionConfig { return overload.DefaultAdmissionConfig() }

// BreakerConfig tunes the exact-fallback circuit breaker.
type BreakerConfig = overload.BreakerConfig

// Breaker guards the exact-optimizer fallback: a token pool bounds
// concurrent solves, and sustained denial opens the circuit so the policy
// engine serves nearest clamped table answers marked Degraded instead.
type Breaker = overload.Breaker

// BreakerStats snapshots the breaker's state and counters.
type BreakerStats = overload.BreakerStats

// NewBreaker builds a circuit breaker; zero fields take defaults.
func NewBreaker(cfg BreakerConfig) *Breaker { return overload.NewBreaker(cfg) }

// DefaultBreakerConfig sizes the breaker for the ~180 µs exact solves.
func DefaultBreakerConfig() BreakerConfig { return overload.DefaultBreakerConfig() }

// ServiceQuery and ServiceDecision are the decision service's wire types
// (shared by cmd/nowlaterd, the Go client and the load generator).
type (
	ServiceQuery    = nlwire.Query
	ServiceDecision = nlwire.Decision
)

// DecisionServerConfig assembles a decision server: engine, admission
// gate, fallback breaker, timeouts and drain grace.
type DecisionServerConfig = nlserver.Config

// DecisionServer is the HTTP layer of cmd/nowlaterd: decide/batch
// endpoints, liveness (/healthz), readiness (/readyz) and /metrics.
type DecisionServer = nlserver.Server

// NewDecisionServer builds the server; the engine may arrive later via
// SetEngine (readiness flips when it lands).
func NewDecisionServer(cfg DecisionServerConfig) *DecisionServer { return nlserver.New(cfg) }

// DecisionClientConfig tunes the resilient decision client: retry budget,
// backoff, hedging, batch splitting, deadline propagation — or Naive mode,
// which disables all of it (the experiment baseline).
type DecisionClientConfig = nlclient.Config

// DecisionClient is the Go client for nowlaterd.
type DecisionClient = nlclient.Client

// DecisionClientStats counts what the client spent: attempts, retries,
// hedges, splits, sheds observed, budget denials.
type DecisionClientStats = nlclient.Stats

// NewDecisionClient builds a client; zero config fields take defaults.
func NewDecisionClient(cfg DecisionClientConfig) *DecisionClient { return nlclient.New(cfg) }

// ServiceFault is a scripted HTTP-layer fault (svc lines of the chaos
// text format): added latency, connection resets, blackholed requests.
type ServiceFault = chaos.ServiceFault

// ServiceProxy injects a schedule's svc faults into live decision-service
// traffic (the harness behind cmd/experiments -only svcchaos).
type ServiceProxy = chaos.ServiceProxy

// ServiceProxyStats counts the proxy's injected faults.
type ServiceProxyStats = chaos.ProxyStats

// NewServiceProxy builds a fault-injecting reverse proxy for target under
// the schedule's svc faults.
func NewServiceProxy(target string, sched *ChaosSchedule) (*ServiceProxy, error) {
	return chaos.NewServiceProxy(target, sched)
}

// Service-chaos experiment result types (cmd/experiments -only svcchaos).
type (
	SvcChaosPoint  = experiments.SvcChaosPoint
	SvcChaosResult = experiments.SvcChaosResult
)

// SvcChaos runs the service-layer chaos experiment: the naive and the
// resilient client against a fault-injected live nowlaterd, paired on
// identical seeds, schedules and query streams.
func SvcChaos(cfg ExperimentConfig) (SvcChaosResult, error) {
	return experiments.SvcChaos(cfg)
}
