package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/runner"
)

// TestMain lets the test binary double as the experiments CLI: when
// re-exec'd with EXPERIMENTS_CRASH_CHILD=1 it runs the real run() with the
// newline-joined args from EXPERIMENTS_CRASH_ARGS instead of the test
// suite. The kill-and-resume test uses this to SIGKILL a genuine
// mid-sweep process rather than simulating a crash in-process.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_CRASH_CHILD") == "1" {
		os.Exit(run(strings.Split(os.Getenv("EXPERIMENTS_CRASH_ARGS"), "\n")))
	}
	os.Exit(m.Run())
}

// runQuiet runs the CLI in-process with stdout discarded (step narration
// is noise here); stderr stays visible for debugging failures.
func runQuiet(t *testing.T, args ...string) int {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return run(args)
}

// TestKillAndResumeByteIdentical is the crash-safety acceptance test:
// SIGKILL the chaos sweep mid-run, resume from the journal at a different
// worker count, and require the final CSV byte-identical to an
// uninterrupted run.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-and-resume runs the chaos sweep three times")
	}
	base := t.TempDir()
	outClean := filepath.Join(base, "clean")
	outCrash := filepath.Join(base, "crash")
	ckDir := filepath.Join(base, "ck")

	// Uninterrupted reference run, no checkpointing.
	if rc := runQuiet(t, "-quick", "-only", "chaos", "-workers", "2", "-out", outClean); rc != 0 {
		t.Fatalf("reference run exited %d", rc)
	}

	// Child process with journaling, killed once at least one trial is
	// durably journaled.
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(),
		"EXPERIMENTS_CRASH_CHILD=1",
		"EXPERIMENTS_CRASH_ARGS="+strings.Join([]string{
			"-quick", "-only", "chaos", "-workers", "2",
			"-out", outCrash, "-checkpoint", ckDir,
		}, "\n"))
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- child.Wait() }()

	deadline := time.Now().Add(90 * time.Second)
	for {
		if journaledBytes(t, ckDir) > 0 {
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("child finished before it could be killed: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			t.Fatal("no journal records appeared within the deadline")
		}
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	<-exited

	// Resume at a different worker count: the determinism contract makes
	// this legal, and the test proves it.
	if rc := runQuiet(t, "-quick", "-only", "chaos", "-workers", "3",
		"-out", outCrash, "-checkpoint", ckDir, "-resume"); rc != 0 {
		t.Fatalf("resume exited %d", rc)
	}
	var skipped int
	for _, sw := range runner.Metrics() {
		skipped += sw.Skipped
	}
	if skipped == 0 {
		t.Error("resume re-ran every trial — the journal was ignored")
	}

	for _, f := range []string{"chaos.csv", "chaos.svg"} {
		clean, err := os.ReadFile(filepath.Join(outClean, f))
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(filepath.Join(outCrash, f))
		if err != nil {
			t.Fatal(err)
		}
		if string(clean) != string(resumed) {
			t.Errorf("%s differs between uninterrupted and killed+resumed runs", f)
		}
	}
}

// journaledBytes sums the record bytes (past each 24-byte header) across
// the directory's journals — > 0 means at least part of a trial is on disk.
func journaledBytes(t *testing.T, dir string) int64 {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 24 {
			n += fi.Size() - 24
		}
	}
	return n
}

// TestResumeMismatchRejected: journals written under one seed must refuse
// to feed a run with another, loudly, rather than silently mixing grids.
func TestResumeMismatchRejected(t *testing.T) {
	base := t.TempDir()
	out := filepath.Join(base, "out")
	ckDir := filepath.Join(base, "ck")

	// fig8 is analytic and fast, and routes through the same sweep engine.
	if rc := runQuiet(t, "-quick", "-only", "fig8", "-out", out, "-checkpoint", ckDir); rc != 0 {
		t.Fatalf("initial run exited %d", rc)
	}
	if rc := runQuiet(t, "-quick", "-only", "fig8", "-out", out,
		"-checkpoint", ckDir, "-resume", "-seed", "2"); rc != 1 {
		t.Fatalf("mismatched resume exited %d, want 1", rc)
	}
	// The matching config still resumes cleanly, skipping journaled work.
	if rc := runQuiet(t, "-quick", "-only", "fig8", "-out", out,
		"-checkpoint", ckDir, "-resume"); rc != 0 {
		t.Fatalf("matching resume exited %d", rc)
	}
	var skipped int
	for _, sw := range runner.Metrics() {
		skipped += sw.Skipped
	}
	if skipped == 0 {
		t.Error("matching resume re-ran journaled trials")
	}
}

func TestResumeRequiresCheckpointDir(t *testing.T) {
	if rc := runQuiet(t, "-resume"); rc != 2 {
		t.Fatalf("-resume without -checkpoint exited %d, want 2", rc)
	}
}
