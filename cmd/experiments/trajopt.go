package main

import (
	"fmt"
	"math"
	"os"

	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/trace"
)

// trajOpt runs the joint-trajectory-optimization sweep: the three planner
// arms (fixed-route now-or-later, greedy-nearest, joint receding-horizon)
// over paired Poisson request streams, recording throughput, delay and
// energy per delivered byte.
func (r *runnerCmd) trajOpt() error {
	params := experiments.DefaultTrajOptParams()
	if r.quick {
		params = experiments.QuickTrajOptParams()
	}
	res, err := experiments.TrajOptWith(r.cfg, params)
	if err != nil {
		return err
	}
	r.trajOptRes = &res
	fmt.Printf("  request service on paired Poisson streams (%d rates × 3 planners, %d servers, %d requests/trial):\n",
		len(params.Rates), params.Servers, params.Count)
	series := make([]trace.Series, 0, 3)
	var rows [][]float64
	for _, s := range []string{"fixed", "greedy", "joint"} {
		series = append(series, trace.Series{Name: s + " served ratio"})
	}
	for _, pt := range res.Points {
		fmt.Printf("    %-7s rate %.2f/s: served %3d/%3d (%.3f), %.1f MB, delay mean %.1f s p99 %.1f s, %.1f battery-s/MB\n",
			pt.Planner, pt.RatePerS, pt.Served, pt.Requests, pt.ServedRatio,
			pt.DeliveredMB, pt.MeanDelayS, pt.P99DelayS, pt.EnergySPerMB)
		for i, s := range []string{"fixed", "greedy", "joint"} {
			if pt.Planner == s {
				series[i].X = append(series[i].X, pt.RatePerS)
				series[i].Y = append(series[i].Y, pt.ServedRatio)
			}
		}
		ePerMB := pt.EnergySPerMB
		if math.IsInf(ePerMB, 1) {
			ePerMB = -1 // CSV cannot hold +Inf; -1 marks "nothing delivered"
		}
		rows = append(rows, []float64{pt.RatePerS, plannerIndex(pt.Planner),
			float64(pt.Requests), float64(pt.Served), pt.ServedRatio,
			pt.DeliveredMB, pt.MeanDelayS, pt.P99DelayS, pt.EnergyS, ePerMB})
	}
	for _, s := range res.Summary {
		fmt.Printf("    %-7s overall: served %.3f, %.1f battery-s/MB, mean delay %.1f s\n",
			s.Planner, s.ServedRatio, s.EnergySPerMB, s.MeanDelayS)
	}
	fmt.Print(trace.LinePlot("Joint trajectory optimization: served ratio vs arrival rate", series, 72, 14))
	if err := trace.WriteSVG(r.path("trajopt.svg"),
		trace.SVGLinePlot("Joint trajectory optimization: served-before-deadline ratio",
			"arrival rate (req/s)", "served ratio", series)); err != nil {
		fmt.Fprintln(os.Stderr, "trajopt svg:", err)
	}
	return trace.WriteCSV(r.path("trajopt.csv"),
		[]string{"rate_per_s", "planner", "requests", "served", "served_ratio",
			"delivered_mb", "mean_delay_s", "p99_delay_s", "energy_s", "energy_s_per_mb"}, rows)
}

// plannerIndex encodes the planner arm as a stable CSV column value
// (0 fixed, 1 greedy, 2 joint).
func plannerIndex(p string) float64 {
	switch p {
	case "greedy":
		return 1
	case "joint":
		return 2
	default:
		return 0
	}
}
