// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulation stack, writing CSV series plus ASCII
// renderings under -out (default results/).
//
// Usage:
//
//	experiments                  # everything, publication-scale workload
//	experiments -quick           # reduced workload
//	experiments -list            # enumerate the registered steps and exit
//	experiments -only fig5,fig6  # a subset (run -list for the vocabulary)
//	experiments -workers 4       # bounded trial parallelism (0 = one per core)
//	experiments -bench           # also write BENCH_experiments.json timings
//	experiments -checkpoint DIR  # journal per-trial results under DIR
//	experiments -checkpoint DIR -resume   # resume a killed run from DIR
//
// With -checkpoint every completed trial is fsync'd to an append-only
// journal before it counts; after a crash or SIGKILL, rerunning with
// -resume re-executes only the missing trials and produces byte-identical
// output to an uninterrupted run — at any -workers value. Resuming against
// journals written under a different seed/workload fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/checkpoint"
	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/runner"
	"github.com/nowlater/nowlater/internal/trace"
)

// stepBench is the recorded timing of one figure/table step.
type stepBench struct {
	Name string `json:"name"`
	// WallS is the end-to-end wall-clock of the step, rendering included.
	WallS float64 `json:"wall_s"`
	// Sweeps are the runner-pool statistics of every trial sweep the step
	// ran (empty for purely analytic steps).
	Sweeps []runner.RunStats `json:"sweeps,omitempty"`
}

// benchReport is the schema of BENCH_experiments.json.
type benchReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	Quick      bool        `json:"quick"`
	Seed       int64       `json:"seed"`
	Steps      []stepBench `json:"steps"`
	// ChaosSpeedupVsSerial is the chaos step's wall-clock at the requested
	// worker count relative to a workers=1 re-run (recorded as the
	// "chaos-workers1-baseline" step). On a single-core host this hovers
	// near 1 — the pool buys overlap, not extra silicon.
	ChaosSpeedupVsSerial float64 `json:"chaos_speedup_vs_serial,omitempty"`
	// ChaosCheckpointOverhead is the chaos step's wall-clock with per-trial
	// journaling (the "chaos-checkpointed" step, fsync per trial) relative
	// to the plain chaos step — what crash-safety costs.
	ChaosCheckpointOverhead float64 `json:"chaos_checkpoint_overhead,omitempty"`
	// PolicyLookupNS and PolicyExactOptimizeNS are the policy step's mean
	// nanoseconds per table-served lookup and per exact golden-section
	// optimization; PolicySpeedup their ratio (the serving win).
	PolicyLookupNS        float64 `json:"policy_lookup_ns,omitempty"`
	PolicyExactOptimizeNS float64 `json:"policy_exact_optimize_ns,omitempty"`
	PolicySpeedup         float64 `json:"policy_speedup,omitempty"`
	// SvcNaiveOKRatio and SvcResilientOKRatio are the svcchaos step's
	// success ratios at the highest fault intensity — what the resilient
	// client buys against a faulting decision service.
	SvcNaiveOKRatio     float64 `json:"svcchaos_naive_ok_ratio,omitempty"`
	SvcResilientOKRatio float64 `json:"svcchaos_resilient_ok_ratio,omitempty"`
	// FleetScale is the fleetscale step's per-size record: events processed,
	// sub-ticks stepped vs the legacy lockstep cost, and wall-clock — the
	// evidence that run cost scales with events, not time × fleet.
	FleetScale []experiments.FleetScalePoint `json:"fleetscale,omitempty"`
	// TrajOpt is the trajopt step's per-(rate, planner) record: served
	// ratio, delay and energy-per-delivered-byte of the three planner arms
	// on paired request streams.
	TrajOpt []experiments.TrajOptPoint `json:"trajopt,omitempty"`
	// ScenarioIR compares a corpus replay with per-Runtime policy caches
	// against the batched ResolveAll + shared-TableCache path: table build
	// counts and wall-clock, with result fingerprints asserted identical.
	ScenarioIR *scenarioIRBench `json:"scenario_ir,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with testable plumbing: flag errors return 2, step or setup
// failures return 1.
func run(args []string) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	out := fs.String("out", "results", "output directory for CSV files")
	quick := fs.Bool("quick", false, "reduced workload (fewer trials, shorter runs)")
	only := fs.String("only", "",
		"comma-separated subset: "+strings.Join(experiments.StepNames(), ","))
	fig := fs.String("fig", "", "alias for -only")
	list := fs.Bool("list", false, "list the registered steps and exit")
	seed := fs.Int64("seed", 1, "root random seed")
	workers := fs.Int("workers", 0, "trial-pool size (0 = one worker per core); results are identical for any value")
	bench := fs.Bool("bench", false, "write per-figure timings to BENCH_experiments.json in the working directory")
	ckptDir := fs.String("checkpoint", "", "journal per-trial results under this directory (fsync'd; survives SIGKILL)")
	resume := fs.Bool("resume", false, "with -checkpoint: skip trials already journaled instead of wiping the directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, s := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", s.Name, s.Title)
		}
		return 0
	}

	cfg := nowlater.DefaultExperimentConfig()
	if *quick {
		cfg = nowlater.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint DIR")
		return 2
	}
	if *ckptDir != "" {
		store, err := checkpoint.NewStore(*ckptDir, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		cfg.Checkpoint = store
	}

	known := map[string]bool{}
	for _, name := range experiments.StepNames() {
		known[name] = true
	}
	want := map[string]bool{}
	for _, sel := range []string{*only, *fig} {
		if sel == "" {
			continue
		}
		for _, name := range strings.Split(sel, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "experiments: unknown step %q (want one of %s)\n",
					name, strings.Join(experiments.StepNames(), ","))
				return 2
			}
			want[name] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	run := &runnerCmd{cfg: cfg, outDir: *out, quick: *quick}
	// The step order and vocabulary come from the shared registry; this map
	// only binds each registered name to its runner.
	bind := map[string]func() error{
		"table1":     run.table1,
		"fig1":       run.fig1,
		"fig4":       run.fig4,
		"fig5":       run.fig5,
		"fig6":       run.fig6,
		"fig7":       run.fig7,
		"fig8":       run.fig8,
		"fig9":       run.fig9,
		"ablations":  run.ablations,
		"mission":    run.missionLevel,
		"chaos":      run.survivability,
		"svcchaos":   run.svcChaos,
		"policy":     run.policyCheck,
		"fleetscale": run.fleetScale,
		"trajopt":    run.trajOpt,
	}
	var steps []struct {
		name string
		fn   func() error
	}
	for _, info := range experiments.Registry() {
		fn, ok := bind[info.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: registry step %q has no runner\n", info.Name)
			return 1
		}
		steps = append(steps, struct {
			name string
			fn   func() error
		}{info.Name, fn})
	}
	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Quick:      *quick,
		Seed:       *seed,
	}
	failed := false
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		runner.ResetMetrics()
		start := time.Now()
		err := s.fn()
		wall := time.Since(start).Seconds()
		sweeps := runner.Metrics()
		report.Steps = append(report.Steps, stepBench{Name: s.name, WallS: wall, Sweeps: sweeps})
		var trials, skipped, stalls, panics int
		for _, sw := range sweeps {
			trials += sw.Completed
			skipped += sw.Skipped
			stalls += sw.Stalls
			panics += sw.Panics
		}
		fmt.Printf("--- %s: %.2f s wall, %d trials over %d sweeps", s.name, wall, trials, len(sweeps))
		if skipped > 0 {
			fmt.Printf(", %d resumed from checkpoint", skipped)
		}
		if stalls > 0 {
			fmt.Printf(", %d stalls", stalls)
		}
		if panics > 0 {
			fmt.Printf(", %d panics", panics)
		}
		fmt.Println()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			failed = true
		}
	}
	if *bench && sel("chaos") {
		// Serial baseline for the speedup record: same seed, workers pinned
		// to 1, no checkpointing (so it never resumes the main step's
		// journals), bit-identical output (so overwriting chaos.csv is
		// harmless).
		baseCfg := cfg
		baseCfg.Workers = 1
		baseCfg.Checkpoint = nil
		base := &runnerCmd{cfg: baseCfg, outDir: *out}
		runner.ResetMetrics()
		start := time.Now()
		if err := base.survivability(); err != nil {
			fmt.Fprintln(os.Stderr, "chaos workers=1 baseline:", err)
			failed = true
		}
		wall := time.Since(start).Seconds()
		report.Steps = append(report.Steps, stepBench{
			Name: "chaos-workers1-baseline", WallS: wall, Sweeps: runner.Metrics(),
		})
		for _, s := range report.Steps {
			if s.Name == "chaos" && s.WallS > 0 {
				report.ChaosSpeedupVsSerial = wall / s.WallS
			}
		}
		// Checkpoint-overhead record: the same chaos step with a fresh
		// journal per sweep (one fsync per trial) into a throwaway
		// directory, at the requested worker count.
		if ckWall, err := benchCheckpointedChaos(cfg, *out, &report); err != nil {
			fmt.Fprintln(os.Stderr, "chaos checkpointed run:", err)
			failed = true
		} else {
			for _, s := range report.Steps {
				if s.Name == "chaos" && s.WallS > 0 {
					report.ChaosCheckpointOverhead = ckWall / s.WallS
				}
			}
		}
	}
	if pr := run.policyRes; pr != nil {
		report.PolicyLookupNS = pr.LookupNS
		report.PolicyExactOptimizeNS = pr.OptimizeNS
		report.PolicySpeedup = pr.Speedup
	}
	if fr := run.fleetScaleRes; fr != nil {
		report.FleetScale = fr.Points
	}
	if tr := run.trajOptRes; tr != nil {
		report.TrajOpt = tr.Points
	}
	if sr := run.svcChaosRes; sr != nil && len(sr.Points) > 0 {
		last := sr.Points[len(sr.Points)-1]
		report.SvcNaiveOKRatio = last.NaiveOKRatio
		report.SvcResilientOKRatio = last.ResilientOKRatio
	}
	if *bench {
		if err := benchScenarioIR(&report); err != nil {
			fmt.Fprintln(os.Stderr, "scenario-ir bench:", err)
			failed = true
		}
		if err := writeBench("BENCH_experiments.json", report); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			failed = true
		} else {
			fmt.Println("bench timings written to BENCH_experiments.json")
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("\nCSV output written under %s/\n", *out)
	return 0
}

// benchCheckpointedChaos reruns the chaos step with journaling into a
// temporary checkpoint directory and records it as the "chaos-checkpointed"
// bench step, returning its wall-clock.
func benchCheckpointedChaos(cfg experiments.Config, outDir string, report *benchReport) (float64, error) {
	dir, err := os.MkdirTemp("", "experiments-ckpt-bench-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.NewStore(dir, false)
	if err != nil {
		return 0, err
	}
	ckCfg := cfg
	ckCfg.Checkpoint = store
	ck := &runnerCmd{cfg: ckCfg, outDir: outDir}
	runner.ResetMetrics()
	start := time.Now()
	if err := ck.survivability(); err != nil {
		return 0, err
	}
	wall := time.Since(start).Seconds()
	report.Steps = append(report.Steps, stepBench{
		Name: "chaos-checkpointed", WallS: wall, Sweeps: runner.Metrics(),
	})
	return wall, nil
}

func writeBench(path string, report benchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return trace.WriteFileAtomicBytes(path, append(data, '\n'))
}

type runnerCmd struct {
	cfg    experiments.Config
	outDir string
	// quick shrinks the policy step's serving tables along with the rest
	// of the reduced workload.
	quick bool
	// policyRes and svcChaosRes hold their steps' results for the bench
	// report.
	policyRes     *experiments.PolicyCheckResult
	svcChaosRes   *experiments.SvcChaosResult
	fleetScaleRes *experiments.FleetScaleResult
	trajOptRes    *experiments.TrajOptResult
}
