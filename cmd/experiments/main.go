// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulation stack, writing CSV series plus ASCII
// renderings under -out (default results/).
//
// Usage:
//
//	experiments                  # everything, publication-scale workload
//	experiments -quick           # reduced workload
//	experiments -only fig5,fig6  # a subset (table1, fig1, fig4..fig9, ablations)
//	experiments -workers 4       # bounded trial parallelism (0 = one per core)
//	experiments -bench           # also write BENCH_experiments.json timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/runner"
)

// stepBench is the recorded timing of one figure/table step.
type stepBench struct {
	Name string `json:"name"`
	// WallS is the end-to-end wall-clock of the step, rendering included.
	WallS float64 `json:"wall_s"`
	// Sweeps are the runner-pool statistics of every trial sweep the step
	// ran (empty for purely analytic steps).
	Sweeps []runner.RunStats `json:"sweeps,omitempty"`
}

// benchReport is the schema of BENCH_experiments.json.
type benchReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Workers    int         `json:"workers"`
	Quick      bool        `json:"quick"`
	Seed       int64       `json:"seed"`
	Steps      []stepBench `json:"steps"`
	// ChaosSpeedupVsSerial is the chaos step's wall-clock at the requested
	// worker count relative to a workers=1 re-run (recorded as the
	// "chaos-workers1-baseline" step). On a single-core host this hovers
	// near 1 — the pool buys overlap, not extra silicon.
	ChaosSpeedupVsSerial float64 `json:"chaos_speedup_vs_serial,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	out := fs.String("out", "results", "output directory for CSV files")
	quick := fs.Bool("quick", false, "reduced workload (fewer trials, shorter runs)")
	only := fs.String("only", "", "comma-separated subset: table1,fig1,fig4,fig5,fig6,fig7,fig8,fig9,ablations,mission,chaos")
	fig := fs.String("fig", "", "alias for -only")
	seed := fs.Int64("seed", 1, "root random seed")
	workers := fs.Int("workers", 0, "trial-pool size (0 = one worker per core); results are identical for any value")
	bench := fs.Bool("bench", false, "write per-figure timings to BENCH_experiments.json in the working directory")
	_ = fs.Parse(os.Args[1:])

	cfg := nowlater.DefaultExperimentConfig()
	if *quick {
		cfg = nowlater.QuickExperimentConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	want := map[string]bool{}
	for _, sel := range []string{*only, *fig} {
		if sel == "" {
			continue
		}
		for _, name := range strings.Split(sel, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	run := &runnerCmd{cfg: cfg, outDir: *out}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"table1", run.table1},
		{"fig1", run.fig1},
		{"fig4", run.fig4},
		{"fig5", run.fig5},
		{"fig6", run.fig6},
		{"fig7", run.fig7},
		{"fig8", run.fig8},
		{"fig9", run.fig9},
		{"ablations", run.ablations},
		{"mission", run.missionLevel},
		{"chaos", run.survivability},
	}
	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		Quick:      *quick,
		Seed:       *seed,
	}
	failed := false
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		runner.ResetMetrics()
		start := time.Now()
		err := s.fn()
		wall := time.Since(start).Seconds()
		sweeps := runner.Metrics()
		report.Steps = append(report.Steps, stepBench{Name: s.name, WallS: wall, Sweeps: sweeps})
		trials := 0
		for _, sw := range sweeps {
			trials += sw.Completed
		}
		fmt.Printf("--- %s: %.2f s wall, %d trials over %d sweeps\n", s.name, wall, trials, len(sweeps))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			failed = true
		}
	}
	if *bench && sel("chaos") {
		// Serial baseline for the speedup record: same seed, workers
		// pinned to 1, bit-identical output (so overwriting chaos.csv is
		// harmless).
		baseCfg := cfg
		baseCfg.Workers = 1
		base := &runnerCmd{cfg: baseCfg, outDir: *out}
		runner.ResetMetrics()
		start := time.Now()
		if err := base.survivability(); err != nil {
			fmt.Fprintln(os.Stderr, "chaos workers=1 baseline:", err)
			failed = true
		}
		wall := time.Since(start).Seconds()
		report.Steps = append(report.Steps, stepBench{
			Name: "chaos-workers1-baseline", WallS: wall, Sweeps: runner.Metrics(),
		})
		for _, s := range report.Steps {
			if s.Name == "chaos" && s.WallS > 0 {
				report.ChaosSpeedupVsSerial = wall / s.WallS
			}
		}
	}
	if *bench {
		if err := writeBench("BENCH_experiments.json", report); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			failed = true
		} else {
			fmt.Println("bench timings written to BENCH_experiments.json")
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nCSV output written under %s/\n", *out)
}

func writeBench(path string, report benchReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type runnerCmd struct {
	cfg    experiments.Config
	outDir string
}
