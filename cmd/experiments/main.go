// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulation stack, writing CSV series plus ASCII
// renderings under -out (default results/).
//
// Usage:
//
//	experiments                  # everything, publication-scale workload
//	experiments -quick           # reduced workload
//	experiments -only fig5,fig6  # a subset (table1, fig1, fig4..fig9, ablations)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	out := fs.String("out", "results", "output directory for CSV files")
	quick := fs.Bool("quick", false, "reduced workload (fewer trials, shorter runs)")
	only := fs.String("only", "", "comma-separated subset: table1,fig1,fig4,fig5,fig6,fig7,fig8,fig9,ablations,mission,chaos")
	fig := fs.String("fig", "", "alias for -only")
	seed := fs.Int64("seed", 1, "root random seed")
	_ = fs.Parse(os.Args[1:])

	cfg := nowlater.DefaultExperimentConfig()
	if *quick {
		cfg = nowlater.QuickExperimentConfig()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	for _, sel := range []string{*only, *fig} {
		if sel == "" {
			continue
		}
		for _, name := range strings.Split(sel, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	runner := &runner{cfg: cfg, outDir: *out}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"table1", runner.table1},
		{"fig1", runner.fig1},
		{"fig4", runner.fig4},
		{"fig5", runner.fig5},
		{"fig6", runner.fig6},
		{"fig7", runner.fig7},
		{"fig8", runner.fig8},
		{"fig9", runner.fig9},
		{"ablations", runner.ablations},
		{"mission", runner.missionLevel},
		{"chaos", runner.survivability},
	}
	failed := false
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		fmt.Printf("=== %s ===\n", s.name)
		if err := s.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nCSV output written under %s/\n", *out)
}

type runner struct {
	cfg    experiments.Config
	outDir string
}
