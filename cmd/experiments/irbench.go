package main

import (
	"fmt"
	"time"

	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/scenariogen"
)

// scenarioIRBench is the bench-only record of the corpus-matrix replay —
// every committed scenario run through both execution paths (event-driven
// and the lockstep oracle), exactly the sweep CI and the differential
// harness run — compiled two ways: the pre-IR shape (each runtime compiled
// from the Spec with its own private policy TableCache, so a table-decided
// scenario rebuilds its platform table once per path) versus the batched
// path (ResolveAll once, both runtimes linked from the shared Program
// against one cache spanning the whole sweep). Fingerprints are asserted
// identical between paths and arms before anything is recorded, so the
// numbers always describe bit-identical replays.
type scenarioIRBench struct {
	// Specs is the corpus size; RuntimesPerSpec the paths each entry runs
	// (event-driven + lockstep).
	Specs           int `json:"specs"`
	RuntimesPerSpec int `json:"runtimes_per_spec"`
	// PrivateBuilds / PrivateWallS: per-runtime compiles and caches — table
	// builds summed over every runtime, and the compile+run wall-clock of
	// the sweep.
	PrivateBuilds int     `json:"private_builds"`
	PrivateWallS  float64 `json:"private_wall_s"`
	// SharedBuilds / SharedHits / SharedWallS: the batched path — one
	// ResolveAll, every runtime linked against one shared cache. Builds
	// collapse to one per distinct platform key; every further table
	// decision is a hit.
	SharedBuilds int     `json:"shared_builds"`
	SharedHits   int     `json:"shared_hits"`
	SharedWallS  float64 `json:"shared_wall_s"`
	// BuildReduction is 1 − shared/private builds (0 when the corpus holds
	// no table decisions at all).
	BuildReduction float64 `json:"build_reduction"`
	// TableBuildWallS is the wall-clock the shared arm spent inside table
	// construction — the unit cost the reduction multiplies.
	TableBuildWallS float64 `json:"table_build_wall_s"`
	// TableKeys are the distinct platform tables the shared cache ended up
	// holding.
	TableKeys []string `json:"table_keys,omitempty"`
}

// irBenchModes are the execution paths every corpus entry replays through —
// the same matrix the corpus CI job and the differential harness run.
var irBenchModes = []scenario.Options{
	{},
	{Lockstep: true},
}

// benchScenarioIR replays the pinned scenario corpus through both
// execution paths per caching arm and records the policy-table build
// counts and wall-clock delta as the "scenario_ir" record of
// BENCH_experiments.json.
func benchScenarioIR(report *benchReport) error {
	specs := scenariogen.CorpusSpecs()
	rec := scenarioIRBench{Specs: len(specs), RuntimesPerSpec: len(irBenchModes)}

	// Arm 1: the pre-IR shape — each path re-compiles the Spec and gets its
	// own cache, so a table-decided scenario builds its table per path.
	fps := make([]uint64, len(specs))
	start := time.Now()
	for i, s := range specs {
		for mi, mode := range irBenchModes {
			rt, err := scenario.CompileWithOptions(s, mode)
			if err != nil {
				return fmt.Errorf("scenario-ir: compile %q: %w", s.Name, err)
			}
			res, err := rt.Run()
			if err != nil {
				return fmt.Errorf("scenario-ir: run %q: %w", s.Name, err)
			}
			fp := scenario.ResultFingerprint(res)
			if mi == 0 {
				fps[i] = fp
			} else if fp != fps[i] {
				return fmt.Errorf("scenario-ir: %q lockstep fingerprint %016x != event-driven %016x",
					s.Name, fp, fps[i])
			}
			rec.PrivateBuilds += rt.Tables().Stats().Builds
		}
	}
	rec.PrivateWallS = time.Since(start).Seconds()

	// Arm 2: batch-resolve the corpus once, link every path from the shared
	// Program against one cache. Must be bit-identical — a table is a pure
	// function of its platform, so cache warmth cannot leak into results.
	start = time.Now()
	progs, err := scenario.ResolveAll(specs)
	if err != nil {
		return fmt.Errorf("scenario-ir: %w", err)
	}
	tables := scenario.NewTableCache()
	for i, p := range progs {
		for _, mode := range irBenchModes {
			opts := mode
			opts.Tables = tables
			rt, err := scenario.LinkWithOptions(p, opts)
			if err != nil {
				return fmt.Errorf("scenario-ir: link %q: %w", specs[i].Name, err)
			}
			res, err := rt.Run()
			if err != nil {
				return fmt.Errorf("scenario-ir: run %q (shared cache): %w", specs[i].Name, err)
			}
			if fp := scenario.ResultFingerprint(res); fp != fps[i] {
				return fmt.Errorf("scenario-ir: %q drifted under the shared cache: %016x != %016x",
					specs[i].Name, fp, fps[i])
			}
		}
	}
	rec.SharedWallS = time.Since(start).Seconds()
	st := tables.Stats()
	rec.SharedBuilds = st.Builds
	rec.SharedHits = st.Hits
	rec.TableBuildWallS = st.BuildWallS
	rec.TableKeys = tables.Keys()
	if rec.PrivateBuilds > 0 {
		rec.BuildReduction = 1 - float64(rec.SharedBuilds)/float64(rec.PrivateBuilds)
	}
	report.ScenarioIR = &rec
	fmt.Printf("--- scenario-ir: %d specs × %d paths, table builds %d -> %d (%.0f%% fewer), wall %.2f s -> %.2f s\n",
		rec.Specs, rec.RuntimesPerSpec, rec.PrivateBuilds, rec.SharedBuilds, 100*rec.BuildReduction,
		rec.PrivateWallS, rec.SharedWallS)
	return nil
}
