package main

import (
	"fmt"
	"math"
	"os"

	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/trace"
)

// fleetScale runs the fleet-scaling sweep on the event-driven scenario core
// and records the cost-scales-with-events evidence: sub-ticks stepped vs the
// legacy lockstep cost, events processed, and the hub capacity/delay curves.
func (r *runnerCmd) fleetScale() error {
	params := experiments.DefaultFleetScaleParams()
	if r.quick {
		params = experiments.QuickFleetScaleParams()
	}
	res, err := experiments.FleetScaleWith(r.cfg, params)
	if err != nil {
		return err
	}
	r.fleetScaleRes = &res
	fmt.Printf("  fleet scale on the event-driven core (%d sizes, %.0f m area, %.0f s horizon):\n",
		len(res.Points), params.AreaM, params.DurationS)
	perNode := trace.Series{Name: "per-node capacity (Mb/s)"}
	bound := trace.Series{Name: "W/sqrt(n ln n) reference"}
	var rows [][]float64
	for _, p := range res.Points {
		saved := 1 - float64(p.SubTicksStepped)/float64(p.LegacySubTicks)
		fmt.Printf("    n=%5d: R=%5.1f m, %7d events (peak %5d pending), stepped %9d of %10d sub-ticks (%.0f%% elided), %.2f s wall\n",
			p.Fleet, p.HubRangeM, p.EventsProcessed, p.PeakPending,
			p.SubTicksStepped, p.LegacySubTicks, 100*saved, p.WallS)
		fmt.Printf("             %d contacts from %d/%d vehicles (%d killed), first contact %.1f s, contention %.2f, hub busy %.0f%%, per-node %.4f Mb/s\n",
			p.Contacts, p.Contacted, p.Fleet-1, p.Killed, p.MeanFirstContactS,
			p.MeanContention, 100*p.HubBusyFrac, p.PerNodeMbps)
		x := math.Log10(float64(p.Fleet))
		perNode.X = append(perNode.X, x)
		perNode.Y = append(perNode.Y, p.PerNodeMbps)
		bound.X = append(bound.X, x)
		bound.Y = append(bound.Y, p.BoundMbps)
		rows = append(rows, []float64{float64(p.Fleet), p.HubRangeM,
			float64(p.EventsProcessed), float64(p.PeakPending),
			float64(p.SubTicksStepped), float64(p.SubTicksElided), float64(p.LegacySubTicks),
			float64(p.Contacts), float64(p.Contacted), float64(p.Killed),
			p.MeanFirstContactS, p.MeanContention, p.HubBusyFrac,
			p.AggCapacityMbps, p.PerNodeMbps, p.BoundMbps, p.MeanNNDistM})
	}
	series := []trace.Series{perNode, bound}
	fmt.Print(trace.LinePlot("Fleet scale: per-node capacity vs log10(fleet size)", series, 72, 14))
	if err := trace.WriteSVG(r.path("fleetscale.svg"),
		trace.SVGLinePlot("Fleet scale: per-node hub capacity",
			"log10(fleet size)", "per-node capacity (Mb/s)", series)); err != nil {
		fmt.Fprintln(os.Stderr, "fleetscale svg:", err)
	}
	// Wall-clock stays out of the CSV: the figure data must be
	// machine-independent (it lives in the bench report instead).
	return trace.WriteCSV(r.path("fleetscale.csv"),
		[]string{"fleet", "hub_range_m", "events_processed", "peak_pending",
			"sub_ticks_stepped", "sub_ticks_elided", "legacy_sub_ticks",
			"contacts", "contacted", "killed",
			"mean_first_contact_s", "mean_contention", "hub_busy_frac",
			"agg_capacity_mbps", "per_node_mbps", "bound_mbps", "mean_nn_dist_m"}, rows)
}
