package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/experiments"
)

func quietRunner(t *testing.T) (*runnerCmd, func() string) {
	t.Helper()
	dir := t.TempDir()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := func() string {
		w.Close()
		os.Stdout = old
		out := make([]byte, 0, 1<<16)
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		return string(out)
	}
	return &runnerCmd{cfg: experiments.QuickConfig(), outDir: dir}, done
}

func TestTable1Step(t *testing.T) {
	r, done := quietRunner(t)
	err := r.table1()
	out := done()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Quadrocopter") {
		t.Errorf("table output: %q", out)
	}
	if _, statErr := os.Stat(filepath.Join(r.outDir, "table1.txt")); statErr != nil {
		t.Fatal("table1.txt not written")
	}
}

func TestAnalyticFigureSteps(t *testing.T) {
	r, done := quietRunner(t)
	err8 := r.fig8()
	err9 := r.fig9()
	out := done()
	if err8 != nil || err9 != nil {
		t.Fatal(err8, err9)
	}
	for _, f := range []string{"fig8.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(r.outDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(string(data), "\n")) < 10 {
			t.Errorf("%s suspiciously short", f)
		}
	}
	if !strings.Contains(out, "dopt") {
		t.Errorf("fig8/9 narration missing dopt: %q", out[:min(400, len(out))])
	}
}

func TestFig1StepWritesSeries(t *testing.T) {
	r, done := quietRunner(t)
	err := r.fig1()
	out := done()
	if err != nil {
		t.Fatal(err)
	}
	data, readErr := os.ReadFile(filepath.Join(r.outDir, "fig1.csv"))
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.HasPrefix(string(data), "strategy_idx,time_s,delivered_mb,distance_m") {
		t.Fatalf("fig1.csv header: %q", string(data[:60]))
	}
	if !strings.Contains(out, "best hover-and-transmit") {
		t.Errorf("fig1 narration missing:\n%s", out)
	}
}

func TestPolicyStep(t *testing.T) {
	r, done := quietRunner(t)
	r.quick = true
	err := r.policyCheck()
	out := done()
	if err != nil {
		t.Fatal(err)
	}
	data, readErr := os.ReadFile(filepath.Join(r.outDir, "policy.csv"))
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.HasPrefix(string(data), "figure_idx,d0_m,speed_mps,mdata_mb,rho") {
		t.Fatalf("policy.csv header: %q", string(data[:60]))
	}
	if !strings.Contains(out, "policy_lookup") || !strings.Contains(out, "exact_optimize") {
		t.Errorf("policy narration missing timings:\n%s", out)
	}
	if r.policyRes == nil || r.policyRes.Speedup <= 1 {
		t.Fatalf("bench result not captured: %+v", r.policyRes)
	}
}

// TestSvcChaosStep drives the service-chaos renderer end to end at a tiny
// workload, guarding the CSV schema and the bench-report capture.
func TestSvcChaosStep(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live HTTP servers")
	}
	r, done := quietRunner(t)
	r.cfg = experiments.Config{Seed: 1, Trials: 1, TrialSeconds: 1}
	err := r.svcChaos()
	out := done()
	if err != nil {
		t.Fatal(err)
	}
	data, readErr := os.ReadFile(filepath.Join(r.outDir, "svcchaos.csv"))
	if readErr != nil {
		t.Fatal(readErr)
	}
	if !strings.HasPrefix(string(data), "intensity,naive_ok_ratio,resilient_ok_ratio") {
		t.Fatalf("svcchaos.csv header: %q", string(data[:min(60, len(data))]))
	}
	if !strings.Contains(out, "service chaos") || !strings.Contains(out, "resilient ok") {
		t.Errorf("svcchaos narration missing:\n%s", out)
	}
	if r.svcChaosRes == nil || len(r.svcChaosRes.Points) == 0 {
		t.Fatal("bench result not captured")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSimulationFigureSteps drives every remaining renderer end to end,
// guarding the CSV schemas and SVG outputs.
func TestSimulationFigureSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("full renderer pass is slow")
	}
	r, done := quietRunner(t)
	errs := map[string]error{
		"fig4":      r.fig4(),
		"fig5":      r.fig5(),
		"fig6":      r.fig6(),
		"fig7":      r.fig7(),
		"ablations": r.ablations(),
	}
	out := done()
	for name, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	wantFiles := []string{
		"fig4_airplanes.csv", "fig4_quads.csv",
		"fig5.csv", "fig5.svg",
		"fig6.csv", "fig6.svg",
		"fig7.csv", "fig7_hover.svg", "fig7_moving.svg", "fig7_speed.svg",
		"ablations.csv",
	}
	for _, f := range wantFiles {
		if _, err := os.Stat(filepath.Join(r.outDir, f)); err != nil {
			t.Errorf("missing output %s", f)
		}
	}
	for _, want := range []string{"median fit", "hover median fit", "datagram loss", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("narration missing %q", want)
		}
	}
	// SVG files must be well-formed enough to start with the svg element.
	data, err := os.ReadFile(filepath.Join(r.outDir, "fig5.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("fig5.svg is not an svg")
	}
}
