package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/experiments"
	"github.com/nowlater/nowlater/internal/trace"
)

func (r *runnerCmd) path(name string) string { return filepath.Join(r.outDir, name) }

func (r *runnerCmd) table1() error {
	tab := nowlater.Table1()
	rendered := trace.Table("Table 1: Main features of the flying platforms", tab.Header, tab.Rows)
	fmt.Print(rendered)
	return trace.WriteFileAtomicBytes(r.path("table1.txt"), []byte(rendered))
}

func (r *runnerCmd) fig1() error {
	res, err := experiments.Fig1(r.cfg)
	if err != nil {
		return err
	}
	var series []trace.Series
	var rows [][]float64
	for i, st := range res.Strategies {
		s := trace.Series{Name: st.Name}
		for _, p := range st.Series {
			s.X = append(s.X, p.TimeS)
			s.Y = append(s.Y, p.DeliveredMB)
			rows = append(rows, []float64{float64(i), p.TimeS, p.DeliveredMB, p.DistanceM})
		}
		series = append(series, s)
		comp := fmt.Sprintf("%.1f s", st.CompletionS)
		if math.IsInf(st.CompletionS, 1) {
			comp = fmt.Sprintf("did not finish (%.1f MB delivered in approach window)", st.DeliveredMB)
		}
		fmt.Printf("  %-8s → %s\n", st.Name, comp)
	}
	fmt.Printf("  best hover-and-transmit distance: %.0f m; analytic crossover vs d0: %.1f MB (paper ≈15 MB)\n",
		res.BestHover, res.AnalyticCrossoverMB)
	fmt.Print(trace.LinePlot("Fig 1: transmitted data (MB) vs time (s)", series, 72, 16))
	if err := trace.WriteSVG(r.path("fig1.svg"),
		trace.SVGLinePlot("Fig 1: transmitted data vs time", "time (s)", "transmitted data (MB)", series)); err != nil {
		return err
	}
	return trace.WriteCSV(r.path("fig1.csv"),
		[]string{"strategy_idx", "time_s", "delivered_mb", "distance_m"}, rows)
}

func (r *runnerCmd) fig4() error {
	res, err := experiments.Fig4(r.cfg)
	if err != nil {
		return err
	}
	var rows [][]float64
	var series []trace.Series
	for i, tr := range res.Airplanes {
		s := trace.Series{Name: tr.VehicleID}
		for _, f := range tr.Fixes {
			s.X = append(s.X, f.ENU.X)
			s.Y = append(s.Y, f.ENU.Y+f.ENU.Z/10) // offset tracks by altitude for visibility
			rows = append(rows, []float64{float64(i), f.Time, f.Position.Lat, f.Position.Lon, f.Position.Alt})
		}
		series = append(series, s)
	}
	fmt.Print(trace.LinePlot("Fig 4(a): airplane GPS traces (ENU, altitude-offset)", series, 72, 14))
	if err := trace.WriteCSV(r.path("fig4_airplanes.csv"),
		[]string{"vehicle_idx", "time_s", "lat_deg", "lon_deg", "alt_m"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i, tr := range res.Quads {
		for _, f := range tr.Fixes {
			rows = append(rows, []float64{float64(i), f.Time, f.Position.Lat, f.Position.Lon, f.Position.Alt})
		}
	}
	fmt.Printf("  quadrocopter hover traces: %d vehicles, %d pairwise airplane distances spanning [%.0f, %.0f] m\n",
		len(res.Quads), len(res.AirplaneDistances), minOf(res.AirplaneDistances), maxOf(res.AirplaneDistances))
	return trace.WriteCSV(r.path("fig4_quads.csv"),
		[]string{"vehicle_idx", "time_s", "lat_deg", "lon_deg", "alt_m"}, rows)
}

func (r *runnerCmd) fig5() error {
	res, err := experiments.Fig5(r.cfg)
	if err != nil {
		return err
	}
	cols := make([]trace.BoxColumn, 0, len(res.Bins))
	rows := make([][]float64, 0, len(res.Bins))
	for _, b := range res.Bins {
		cols = append(cols, trace.BoxColumn{Label: "d=" + strconv.Itoa(int(b.DistanceM)), Box: b.Box})
		rows = append(rows, []float64{b.DistanceM, b.Box.Median, b.Box.Q1, b.Box.Q3,
			b.Box.WhiskerLow, b.Box.WhiskerHigh, float64(b.Box.N)})
	}
	fmt.Print(trace.BoxPlot("Fig 5: airplane throughput (Mb/s) vs distance, auto rate", cols, 56))
	fmt.Printf("  median fit: s(d) = %.2f·log2(d) + %.2f Mb/s, R² = %.3f  (paper: −5.56, 49, R²=0.9)\n",
		res.Fit.A, res.Fit.B, res.Fit.R2)
	if err := trace.WriteSVG(r.path("fig5.svg"),
		trace.SVGBoxPlot("Fig 5: airplane throughput vs distance (auto rate)", "distance (m)", "throughput (Mb/s)", cols)); err != nil {
		return err
	}
	return trace.WriteCSV(r.path("fig5.csv"),
		[]string{"distance_m", "median_mbps", "q1", "q3", "whisker_lo", "whisker_hi", "n"}, rows)
}

func (r *runnerCmd) fig6() error {
	res, err := experiments.Fig6(r.cfg)
	if err != nil {
		return err
	}
	series := []trace.Series{
		{Name: "autorate", X: res.Distances, Y: res.AutoMedian},
		{Name: "best fixed MCS", X: res.Distances, Y: res.BestMedian},
	}
	fmt.Print(trace.LinePlot("Fig 6: best fixed MCS vs auto rate, median Mb/s vs distance", series, 72, 14))
	if err := trace.WriteSVG(r.path("fig6.svg"),
		trace.SVGLinePlot("Fig 6: best fixed MCS vs auto rate", "distance (m)", "median throughput (Mb/s)", series)); err != nil {
		return err
	}
	var rows [][]float64
	for i, d := range res.Distances {
		rows = append(rows, []float64{d, res.AutoMedian[i], res.BestMedian[i], float64(res.BestMCS[i])})
		fmt.Printf("  d=%3.0f m: auto %5.1f, best %5.1f (MCS%d, %.1fx)\n",
			d, res.AutoMedian[i], res.BestMedian[i], res.BestMCS[i],
			res.BestMedian[i]/math.Max(res.AutoMedian[i], 0.01))
	}
	fmt.Printf("  datagram loss: auto %.3f vs best fixed %.3f (\"greatly reduced by simply fixing the rate\")\n",
		res.AutoLoss, res.BestLoss)
	return trace.WriteCSV(r.path("fig6.csv"),
		[]string{"distance_m", "auto_median_mbps", "best_median_mbps", "best_mcs"}, rows)
}

func (r *runnerCmd) fig7() error {
	res, err := experiments.Fig7(r.cfg)
	if err != nil {
		return err
	}
	hcols := make([]trace.BoxColumn, 0)
	var rows [][]float64
	for _, b := range res.Hover {
		hcols = append(hcols, trace.BoxColumn{Label: "d=" + strconv.Itoa(int(b.DistanceM)), Box: b.Box})
		rows = append(rows, []float64{0, b.DistanceM, b.Box.Median, b.Box.Q1, b.Box.Q3})
	}
	fmt.Print(trace.BoxPlot("Fig 7 (left): quadrocopter hover throughput (Mb/s) vs distance", hcols, 56))
	mcols := make([]trace.BoxColumn, 0)
	for _, b := range res.Moving {
		mcols = append(mcols, trace.BoxColumn{Label: "d=" + strconv.Itoa(int(b.DistanceM)), Box: b.Box})
		rows = append(rows, []float64{1, b.DistanceM, b.Box.Median, b.Box.Q1, b.Box.Q3})
	}
	fmt.Print(trace.BoxPlot("Fig 7 (centre): moving at ≈8 m/s", mcols, 56))
	scols := make([]trace.BoxColumn, 0)
	for _, s := range res.Speeds {
		scols = append(scols, trace.BoxColumn{Label: "v=" + strconv.Itoa(int(s.SpeedMPS)), Box: s.Box})
		rows = append(rows, []float64{2, s.SpeedMPS, s.Box.Median, s.Box.Q1, s.Box.Q3})
	}
	fmt.Print(trace.BoxPlot("Fig 7 (right): throughput vs cruise speed at 60 m", scols, 56))
	fmt.Printf("  hover median fit: s(d) = %.2f·log2(d) + %.2f Mb/s, R² = %.3f  (paper: −10.5, 73, R²=0.96)\n",
		res.HoverFit.A, res.HoverFit.B, res.HoverFit.R2)
	for name, panel := range map[string][]trace.BoxColumn{
		"fig7_hover.svg": hcols, "fig7_moving.svg": mcols, "fig7_speed.svg": scols,
	} {
		if err := trace.WriteSVG(r.path(name),
			trace.SVGBoxPlot("Fig 7: quadrocopter throughput ("+name+")", "", "throughput (Mb/s)", panel)); err != nil {
			return err
		}
	}
	return trace.WriteCSV(r.path("fig7.csv"),
		[]string{"panel", "x", "median_mbps", "q1", "q3"}, rows)
}

func (r *runnerCmd) fig8() error {
	res, err := experiments.Fig8(r.cfg)
	if err != nil {
		return err
	}
	var rows [][]float64
	render := func(name string, curves []experiments.Fig8Curve) {
		var series []trace.Series
		for ci, c := range curves {
			s := trace.Series{Name: fmt.Sprintf("rho=%.3g (dopt %.0f m)", c.Rho, c.DoptM)}
			for _, p := range c.Points {
				s.X = append(s.X, p.DM)
				s.Y = append(s.Y, p.Utility)
				rows = append(rows, []float64{float64(ci), c.Rho, p.DM, p.Utility})
			}
			series = append(series, s)
		}
		fmt.Print(trace.LinePlot("Fig 8: U(d) — "+name, series, 72, 14))
		fname := "fig8_airplane.svg"
		if strings.Contains(name, "quad") {
			fname = "fig8_quadrocopter.svg"
		}
		if err := trace.WriteSVG(r.path(fname),
			trace.SVGLinePlot("Fig 8: U(d) — "+name, "d (m)", "U(d)", series)); err != nil {
			fmt.Fprintln(os.Stderr, "fig8 svg:", err)
		}
	}
	render("airplane baseline", res.Airplane)
	render("quadrocopter baseline", res.Quadrocopter)
	return trace.WriteCSV(r.path("fig8.csv"),
		[]string{"curve_idx", "rho", "d_m", "utility"}, rows)
}

func (r *runnerCmd) fig9() error {
	res, err := experiments.Fig9(r.cfg)
	if err != nil {
		return err
	}
	var rows [][]float64
	bySize := map[float64]*trace.Series{}
	var series []trace.Series
	for _, mb := range res.MdataSet {
		s := &trace.Series{Name: fmt.Sprintf("Mdata=%.0fMB", mb)}
		bySize[mb] = s
	}
	for _, p := range res.Points {
		rows = append(rows, []float64{p.MdataMB, p.SpeedMPS, p.DoptM, p.Utility, b2f(p.AtMinimum)})
		s := bySize[p.MdataMB]
		s.X = append(s.X, p.DoptM)
		s.Y = append(s.Y, p.Utility)
	}
	for _, mb := range res.MdataSet {
		series = append(series, *bySize[mb])
	}
	fmt.Print(trace.LinePlot("Fig 9: U(dopt) vs dopt across Mdata (curves) and speeds (points)", series, 72, 16))
	if err := trace.WriteSVG(r.path("fig9.svg"),
		trace.SVGLinePlot("Fig 9: U(dopt) vs dopt", "dopt (m)", "U(dopt)", series)); err != nil {
		return err
	}

	// The dopt surface as a heatmap: rows Mdata, columns speed.
	rowLabels := make([]string, len(res.MdataSet))
	grid := make([][]float64, len(res.MdataSet))
	colLabels := make([]string, len(res.SpeedSet))
	for j, v := range res.SpeedSet {
		colLabels[j] = fmt.Sprintf("v=%g", v)
	}
	for i, mb := range res.MdataSet {
		rowLabels[i] = fmt.Sprintf("%gMB", mb)
		grid[i] = make([]float64, len(res.SpeedSet))
		for j, v := range res.SpeedSet {
			for _, p := range res.Points {
				if p.MdataMB == mb && p.SpeedMPS == v {
					grid[i][j] = p.DoptM
				}
			}
		}
	}
	fmt.Print(trace.Heatmap("Fig 9 surface: dopt (m) by Mdata x speed", rowLabels, colLabels, grid))
	return trace.WriteCSV(r.path("fig9.csv"),
		[]string{"mdata_mb", "speed_mps", "dopt_m", "utility", "at_minimum"}, rows)
}

func (r *runnerCmd) ablations() error {
	type ab struct {
		name string
		fn   func(experiments.Config) (experiments.AblationResult, error)
	}
	var rows [][]float64
	for i, a := range []ab{
		{"aggregation", experiments.AblationAggregation},
		{"phy-features", experiments.AblationPHYFeatures},
		{"optimizer", experiments.AblationOptimizer},
		{"speed-fading", experiments.AblationSpeedFading},
		{"failure-model", experiments.AblationFailureModel},
		{"auto-rate", experiments.AblationAutoRate},
		{"two-ray", experiments.AblationTwoRay},
	} {
		res, err := a.fn(r.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		fmt.Printf("  ablation %s (%s):\n", a.name, res.Unit)
		for j, l := range res.Labels {
			fmt.Printf("    %-20s %.4g\n", l, res.Values[j])
			rows = append(rows, []float64{float64(i), float64(j), res.Values[j]})
		}
	}
	return trace.WriteCSV(r.path("ablations.csv"),
		[]string{"ablation_idx", "variant_idx", "value"}, rows)
}

// fmtOrNA renders v with the given verb, or "n/a" when v is NaN — a median
// or mean over zero completed deliveries is absent data, not a zero.
func fmtOrNA(format string, v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

func (r *runnerCmd) missionLevel() error {
	res, err := experiments.MissionLevel(r.cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  mission-level extension (%d paired runs, ρ=8e−4):\n", res.Runs)
	fmt.Printf("    naive      makespan %s s, delivery ratio %.2f\n", fmtOrNA("%.0f", res.NaiveMakespanS), res.NaiveDeliveryRatio)
	fmt.Printf("    rendezvous makespan %s s, delivery ratio %.2f\n", fmtOrNA("%.0f", res.RendezvousMakespanS), res.RendezvousDeliveryRatio)
	return trace.WriteCSV(r.path("mission.csv"),
		[]string{"naive_makespan_s", "rendezvous_makespan_s", "naive_ratio", "rendezvous_ratio"},
		[][]float64{{res.NaiveMakespanS, res.RendezvousMakespanS, res.NaiveDeliveryRatio, res.RendezvousDeliveryRatio}})
}

// svcChaos runs the service-layer chaos experiment: a live in-process
// nowlaterd behind the fault-injecting proxy, naive vs resilient client
// under paired seeds.
func (r *runnerCmd) svcChaos() error {
	res, err := experiments.SvcChaos(r.cfg)
	if err != nil {
		return err
	}
	r.svcChaosRes = &res
	fmt.Printf("  service chaos: naive vs resilient client (%d queries per arm):\n", res.Queries)
	naive := trace.Series{Name: "naive"}
	resil := trace.Series{Name: "resilient"}
	var rows [][]float64
	for _, p := range res.Points {
		fmt.Printf("    intensity %.2f: naive ok %.3f (median %s ms) vs resilient ok %.3f (median %s ms, %d retries, %d hedges)\n",
			p.Intensity, p.NaiveOKRatio, fmtOrNA("%.1f", p.NaiveMedianMs),
			p.ResilientOKRatio, fmtOrNA("%.1f", p.ResilientMedianMs),
			p.ResilientRetries, p.ResilientHedges)
		naive.X = append(naive.X, p.Intensity)
		naive.Y = append(naive.Y, p.NaiveOKRatio)
		resil.X = append(resil.X, p.Intensity)
		resil.Y = append(resil.Y, p.ResilientOKRatio)
		rows = append(rows, []float64{p.Intensity,
			p.NaiveOKRatio, p.ResilientOKRatio,
			p.NaiveMedianMs, p.ResilientMedianMs,
			float64(p.ResilientRetries), float64(p.ResilientHedges)})
	}
	series := []trace.Series{naive, resil}
	fmt.Print(trace.LinePlot("Service chaos: answered-in-deadline ratio vs fault intensity", series, 72, 14))
	if err := trace.WriteSVG(r.path("svcchaos.svg"),
		trace.SVGLinePlot("Service chaos: success ratio vs fault intensity",
			"fault intensity", "answered within deadline", series)); err != nil {
		fmt.Fprintln(os.Stderr, "svcchaos svg:", err)
	}
	return trace.WriteCSV(r.path("svcchaos.csv"),
		[]string{"intensity", "naive_ok_ratio", "resilient_ok_ratio",
			"naive_median_ms", "resilient_median_ms",
			"resilient_retries", "resilient_hedges"}, rows)
}

// policyCheck replays the Fig 8/Fig 9 sweep optima through the precomputed
// policy tables (internal/policy) and reports serving accuracy and speed.
func (r *runnerCmd) policyCheck() error {
	params := experiments.DefaultPolicyCheckParams()
	if r.quick {
		params = experiments.QuickPolicyCheckParams()
	}
	res, err := experiments.PolicyCheckWith(r.cfg, params)
	if err != nil {
		return err
	}
	r.policyRes = &res
	fmt.Printf("  policy tables vs sweep optima (%d lattice points):\n", res.TablePoints)
	fmt.Printf("    %d/%d optima table-served, %d exact fallbacks (out-of-grid rhos, regime boundaries)\n",
		res.TableServed, len(res.Cases), res.ExactServed)
	fmt.Printf("    max served dopt error %.3g relative (bound %g)\n", res.MaxRelErr, res.Tolerance)
	fmt.Printf("    policy_lookup %.0f ns vs exact_optimize %.0f ns → %.0fx\n",
		res.LookupNS, res.OptimizeNS, res.Speedup)
	var rows [][]float64
	for _, c := range res.Cases {
		rows = append(rows, []float64{float64(c.Figure),
			c.Query.D0M, c.Query.SpeedMPS, c.Query.MdataMB, c.Query.Rho,
			c.ExactDoptM, c.ServedDoptM, c.RelErr, float64(c.Source)})
	}
	return trace.WriteCSV(r.path("policy.csv"),
		[]string{"figure_idx", "d0_m", "speed_mps", "mdata_mb", "rho",
			"exact_dopt_m", "served_dopt_m", "rel_err", "source_idx"}, rows)
}

func (r *runnerCmd) survivability() error {
	res, err := experiments.Survivability(r.cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  survivability under scripted chaos (%d paired missions per point):\n", res.Runs)
	naive := trace.Series{Name: "naive"}
	resil := trace.Series{Name: "resilient"}
	var rows [][]float64
	for _, p := range res.Points {
		fmt.Printf("    intensity %.2f: naive ratio %.3f (delay %s s, %d partial) vs resilient %.3f (delay %s s, %d partial)\n",
			p.Intensity, p.NaiveDeliveryRatio, fmtOrNA("%.0f", p.NaiveMedianDelayS), p.NaivePartials,
			p.ResilientDeliveryRatio, fmtOrNA("%.0f", p.ResilientMedianDelayS), p.ResilientPartials)
		naive.X = append(naive.X, p.Intensity)
		naive.Y = append(naive.Y, p.NaiveDeliveryRatio)
		resil.X = append(resil.X, p.Intensity)
		resil.Y = append(resil.Y, p.ResilientDeliveryRatio)
		rows = append(rows, []float64{p.Intensity,
			p.NaiveDeliveryRatio, p.ResilientDeliveryRatio,
			p.NaiveMedianDelayS, p.ResilientMedianDelayS,
			float64(p.NaivePartials), float64(p.ResilientPartials)})
	}
	series := []trace.Series{naive, resil}
	fmt.Print(trace.LinePlot("Chaos: delivery ratio vs fault intensity", series, 72, 14))
	if err := trace.WriteSVG(r.path("chaos.svg"),
		trace.SVGLinePlot("Chaos: delivery ratio vs fault intensity",
			"fault intensity", "delivery ratio", series)); err != nil {
		fmt.Fprintln(os.Stderr, "chaos svg:", err)
	}
	return trace.WriteCSV(r.path("chaos.csv"),
		[]string{"intensity", "naive_ratio", "resilient_ratio",
			"naive_median_delay_s", "resilient_median_delay_s",
			"naive_partials", "resilient_partials"}, rows)
}
