package main

import "testing"

// TestListExitsClean pins the -list flag: enumerate and stop, no step runs.
func TestListExitsClean(t *testing.T) {
	if rc := runQuiet(t, "-list"); rc != 0 {
		t.Fatalf("-list exited %d", rc)
	}
}

// TestUnknownStepRejected pins that a typo'd -only selector is a loud
// usage error against the registry vocabulary, not a silent no-op run.
func TestUnknownStepRejected(t *testing.T) {
	if rc := runQuiet(t, "-only", "nosuchstep", "-out", t.TempDir()); rc != 2 {
		t.Fatalf("unknown step exited %d, want 2", rc)
	}
	if rc := runQuiet(t, "-fig", "fig5,bogus", "-out", t.TempDir()); rc != 2 {
		t.Fatalf("unknown -fig step exited %d, want 2", rc)
	}
}
