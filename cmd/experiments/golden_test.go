package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/nowlater/nowlater/internal/experiments"
)

// The golden hashes pin the CSV bytes of every figure that moved onto the
// scenario layer (fig1, fig5, fig6, fig7) plus the chaos-survivability
// experiment. They were captured from the pre-refactor rigs (the private
// flightPair clock and the fleet tick loop) and prove the single-clock
// port is byte-identical at any worker count.
//
// goldenQuick pins a reduced workload (Trials 2, TrialSeconds 1) that runs
// on every `go test`; goldenDefault pins seed 1 at the publication-scale
// default config and runs only with GOLDEN_DEFAULT=1 (minutes, not
// seconds — see EXPERIMENTS.md).
var goldenQuick = map[string]string{
	"fig1.csv":  "f8ed5ee48b9ec592b861327398540c6f75c16af9bf8deb71c8f2c9b0bcee351d",
	"fig5.csv":  "393a77ef4afcde9a357a82c317ae5949d8118051c13911a241a1612b3f2531e3",
	"fig6.csv":  "50ef4f5ecd0eaad5aa174f99fc946df85cf6e91453f1cd54ae1d259280bfed87",
	"fig7.csv":  "e7756a4c5d605646fad211da24ea79adf9ca696eb4bb0eba911dcba1fabc7441",
	"chaos.csv": "271562f5c7a331ed35781b14f07b96bb73bc0df57a1f6353943d8fab92762b22",
}

var goldenDefault = map[string]string{
	"fig1.csv":  "f8ed5ee48b9ec592b861327398540c6f75c16af9bf8deb71c8f2c9b0bcee351d",
	"fig5.csv":  "7f690119945d068e5bcffb15bc52250973acdff59d972a3021d9f1839bb2d091",
	"fig6.csv":  "7542fc854c46905f15f2b9e7dbf61a0414bf7baec6eec7d41ee672d602854ba3",
	"fig7.csv":  "9078a015b2f03f0c39e2b2f2ed879cb5aa0d416d1ffbeebc136d02d1f74d1c6b",
	"chaos.csv": "b9ea1aad6db5dc0576acbf870edd55df12966075731ce5fbb0fb65a36031b217",
}

// goldenSteps maps each pinned CSV to the step that writes it.
func goldenSteps(r *runnerCmd) map[string]func() error {
	return map[string]func() error{
		"fig1.csv":  r.fig1,
		"fig5.csv":  r.fig5,
		"fig6.csv":  r.fig6,
		"fig7.csv":  r.fig7,
		"chaos.csv": r.survivability,
	}
}

func hashFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// runGolden executes the pinned steps under cfg and returns name → sha256.
func runGolden(t *testing.T, cfg experiments.Config) map[string]string {
	t.Helper()
	dir := t.TempDir()
	r := &runnerCmd{cfg: cfg, outDir: dir}
	out := make(map[string]string)
	for name, step := range goldenSteps(r) {
		if err := step(); err != nil {
			t.Fatalf("step for %s: %v", name, err)
		}
		out[name] = hashFile(t, filepath.Join(dir, name))
	}
	return out
}

func checkGolden(t *testing.T, want, got map[string]string) {
	t.Helper()
	for name, wantHash := range want {
		gotHash, ok := got[name]
		if !ok {
			t.Errorf("%s: not produced", name)
			continue
		}
		if wantHash == "" {
			// Capture mode: print the hash to paste into the table.
			fmt.Printf("golden %s: %q\n", name, gotHash)
			t.Errorf("%s: golden hash not recorded yet", name)
			continue
		}
		if gotHash != wantHash {
			t.Errorf("%s: CSV bytes drifted from the pre-refactor output:\n  want %s\n  got  %s",
				name, wantHash, gotHash)
		}
	}
}

// TestGoldenEquivalenceQuick is the refactor's equivalence gate at smoke
// scale: the scenario-layer rigs must reproduce the pre-refactor CSVs
// byte-for-byte, serial and parallel alike.
func TestGoldenEquivalenceQuick(t *testing.T) {
	for _, workers := range []int{1, 3} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			t.Parallel()
			cfg := experiments.Config{Seed: 1, Trials: 2, TrialSeconds: 1, Workers: workers}
			checkGolden(t, goldenQuick, runGolden(t, cfg))
		})
	}
}

// TestGoldenEquivalenceDefault is the same gate at the publication-scale
// default workload (seed 1). Gated behind GOLDEN_DEFAULT=1: it reruns the
// five heaviest steps twice.
func TestGoldenEquivalenceDefault(t *testing.T) {
	if os.Getenv("GOLDEN_DEFAULT") == "" {
		t.Skip("set GOLDEN_DEFAULT=1 to run the publication-scale equivalence gate")
	}
	for _, workers := range []int{1, 4} {
		cfg := experiments.DefaultConfig()
		cfg.Workers = workers
		checkGolden(t, goldenDefault, runGolden(t, cfg))
	}
}
