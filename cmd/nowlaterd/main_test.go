package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/policy"
)

// testServer builds a quick-grid engine-backed server once per binary.
var (
	testSrvOnce sync.Once
	testSrv     *server
	testSrvErr  error
)

func quickServer(t *testing.T) *server {
	t.Helper()
	testSrvOnce.Do(func() {
		cfg, err := tableConfig("airplane", "quick")
		if err != nil {
			testSrvErr = err
			return
		}
		tbl, err := policy.Build(context.Background(), cfg, policy.BuildOptions{})
		if err != nil {
			testSrvErr = err
			return
		}
		eng, err := policy.NewEngine(tbl, 256)
		if err != nil {
			testSrvErr = err
			return
		}
		testSrv = newServer(eng)
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	return testSrv
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestDecideEndpoint(t *testing.T) {
	s := quickServer(t)
	h := s.handler(5 * time.Second)

	rec := postJSON(t, h, "/v1/decide",
		queryJSON{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var d decisionJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Error != "" || d.DoptM <= 0 || d.DoptM > 300 || d.Source == "" {
		t.Fatalf("implausible decision: %+v", d)
	}
	// The answer must agree with the exact optimizer to the policy bound.
	cfg, _ := tableConfig("airplane", "quick")
	want, err := cfg.Scenario(policy.Query{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4}).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(d.DoptM-want.DoptM) / want.DoptM; rel > 1e-3 {
		t.Fatalf("served dopt %.4f vs exact %.4f (rel %.2e)", d.DoptM, want.DoptM, rel)
	}

	// Invalid query: 400 with a JSON error, not a panic.
	rec = postJSON(t, h, "/v1/decide", queryJSON{D0M: -5, SpeedMPS: 10, MdataMB: 28})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid query status %d", rec.Code)
	}
	// Malformed body and wrong method.
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader("{not json"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", rr.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/decide", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", rr.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := quickServer(t)
	h := s.handler(5 * time.Second)

	batch := []queryJSON{
		{D0M: 300, SpeedMPS: 10, MdataMB: 28, Rho: 1.11e-4},
		{D0M: 150, SpeedMPS: 5, MdataMB: 10, Rho: 5e-4},
		{D0M: -1, SpeedMPS: 5, MdataMB: 10},           // invalid: per-item error
		{D0M: 900, SpeedMPS: 10, MdataMB: 28, Rho: 0}, // out of grid: exact fallback
	}
	rec := postJSON(t, h, "/v1/decide/batch", batch)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var ds []decisionJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(batch) {
		t.Fatalf("%d decisions for %d queries", len(ds), len(batch))
	}
	if ds[0].Error != "" || ds[1].Error != "" {
		t.Fatalf("valid queries failed: %+v", ds[:2])
	}
	if ds[2].Error == "" {
		t.Fatal("invalid query did not report an error")
	}
	if ds[3].Error != "" || ds[3].Source != policy.SourceExactOutOfGrid.String() {
		t.Fatalf("out-of-grid query: %+v", ds[3])
	}

	// Oversized batch: rejected.
	big := make([]queryJSON, maxBatch+1)
	rec = postJSON(t, h, "/v1/decide/batch", big)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := quickServer(t)
	h := s.handler(5 * time.Second)

	// Generate traffic so counters and the histogram move: the same query
	// twice guarantees a cache hit.
	q := queryJSON{D0M: 200, SpeedMPS: 8, MdataMB: 15, Rho: 2e-4}
	postJSON(t, h, "/v1/decide", q)
	postJSON(t, h, "/v1/decide", q)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var health struct {
		Status      string `json:"status"`
		Points      int    `json:"points"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Points == 0 || len(health.Fingerprint) != 16 {
		t.Fatalf("healthz payload %+v", health)
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"nowlaterd_requests_total",
		`nowlaterd_decisions_total{source="cache"}`,
		"nowlaterd_cache_hit_ratio",
		"nowlaterd_fallback_ratio",
		"nowlaterd_decision_latency_seconds_bucket{le=\"+Inf\"}",
		"nowlaterd_decision_latency_seconds_count",
		"nowlaterd_table_points",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(body, "nowlaterd_cache_hit_ratio 0\n") {
		t.Error("cache hit ratio still zero after a repeated query")
	}
}

// TestServeConcurrentAndGracefulShutdown drives the real listener: batches
// from several goroutines, then a shutdown that must let in-flight
// requests complete.
func TestServeConcurrentAndGracefulShutdown(t *testing.T) {
	s := quickServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.serve(ctx, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	batch := make([]queryJSON, 50)
	for i := range batch {
		batch[i] = queryJSON{
			D0M:      80 + float64(i*6),
			SpeedMPS: 2 + float64(i%9),
			MdataMB:  2 + float64(i%13),
			Rho:      float64(i%5) * 3e-4,
		}
	}
	payload, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Post(base+"/v1/decide/batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Errorf("batch request: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, body)
					return
				}
				var ds []decisionJSON
				if err := json.Unmarshal(body, &ds); err != nil {
					t.Errorf("batch decode: %v", err)
					return
				}
				if len(ds) != len(batch) {
					t.Errorf("%d decisions for %d queries", len(ds), len(batch))
					return
				}
			}
		}()
	}
	wg.Wait()

	// All traffic done: shutdown must return promptly and cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestBuildModeAndServeFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.nlpt")
	var out bytes.Buffer
	if err := run([]string{"-build", "-table", path, "-grid", "quick"}, &out); err != nil {
		t.Fatalf("build mode: %v", err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("build output: %s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// The written file round-trips through LoadMatching under the same
	// flags, and mismatched flags are rejected.
	cfg, _ := tableConfig("airplane", "quick")
	if _, err := policy.LoadMatching(path, cfg); err != nil {
		t.Fatalf("reloading built table: %v", err)
	}
	other, _ := tableConfig("quadrocopter", "quick")
	if _, err := policy.LoadMatching(path, other); err == nil {
		t.Fatal("mismatched platform accepted")
	}

	// -build without -table is an error; unknown flags/platforms too.
	if err := run([]string{"-build"}, io.Discard); err == nil {
		t.Fatal("-build without -table accepted")
	}
	if err := run([]string{"-platform", "zeppelin"}, io.Discard); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run([]string{"-grid", "huge"}, io.Discard); err == nil {
		t.Fatal("unknown grid accepted")
	}
}

func TestLatencyHistogram(t *testing.T) {
	h := newLatencyHistogram()
	h.observe(500 * time.Nanosecond) // first bucket
	h.observe(3 * time.Microsecond)  // le=5e-6
	h.observe(time.Second)           // +Inf
	var buf bytes.Buffer
	h.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "nowlaterd_decision_latency_seconds_count 3") {
		t.Fatalf("count wrong:\n%s", out)
	}
	// Buckets are cumulative: the +Inf bucket carries every observation.
	if !strings.Contains(out, `_bucket{le="+Inf"} 3`) {
		t.Fatalf("+Inf bucket not cumulative:\n%s", out)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
