package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/nlwire"
	"github.com/nowlater/nowlater/internal/policy"
)

// syncBuffer is a race-safe bytes.Buffer for run()'s progress output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestBuildModeAndServeFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.nlpt")
	var out bytes.Buffer
	if err := run([]string{"-build", "-table", path, "-grid", "quick"}, &out); err != nil {
		t.Fatalf("build mode: %v", err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("build output: %s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// The written file round-trips through LoadMatching under the same
	// flags, and mismatched flags are rejected.
	cfg, _ := tableConfig("airplane", "quick")
	if _, err := policy.LoadMatching(path, cfg); err != nil {
		t.Fatalf("reloading built table: %v", err)
	}
	other, _ := tableConfig("quadrocopter", "quick")
	if _, err := policy.LoadMatching(path, other); err == nil {
		t.Fatal("mismatched platform accepted")
	}

	// -build without -table is an error; unknown flags/platforms too.
	if err := run([]string{"-build"}, io.Discard); err == nil {
		t.Fatal("-build without -table accepted")
	}
	if err := run([]string{"-platform", "zeppelin"}, io.Discard); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run([]string{"-grid", "huge"}, io.Discard); err == nil {
		t.Fatal("unknown grid accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nowlaterd") {
		t.Fatalf("version output %q", out.String())
	}
}

// TestServeInMemoryBuildBecomesReady boots the daemon end to end: the
// listener must open before the in-memory table build finishes, /readyz
// must flip to 200 once it lands, and SIGTERM must shut down cleanly.
func TestServeInMemoryBuildBecomesReady(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-grid", "quick", "-addr", "127.0.0.1:0", "-drain-grace", "10ms"}, &out)
	}()

	// The "serving on" line carries the bound address.
	var base string
	for i := 0; i < 200 && base == ""; i++ {
		for _, line := range strings.Split(out.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "serving on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("listener never announced; output:\n%s", out.String())
	}

	ready := false
	for i := 0; i < 400 && !ready; i++ {
		resp, err := http.Get(base + nlwire.PathReadyz)
		if err == nil {
			ready = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ready {
		t.Fatalf("/readyz never reached 200; output:\n%s", out.String())
	}

	// A decision flows, and /healthz carries the build version.
	resp, err := http.Post(base+nlwire.PathDecide, "application/json",
		strings.NewReader(`{"d0_m":300,"speed_mps":10,"mdata_mb":28,"rho":1.11e-4}`))
	if err != nil {
		t.Fatal(err)
	}
	var d nlwire.Decision
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil || d.Error != "" || d.DoptM <= 0 {
		t.Fatalf("decision %+v (err %v)", d, err)
	}
	resp, err = http.Get(base + nlwire.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	var h nlwire.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" || !strings.Contains(h.Version, "nowlaterd") {
		t.Fatalf("health %+v (err %v)", h, err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}
