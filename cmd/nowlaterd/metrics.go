package main

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds, spanning
// cache hits (~100 ns) through exact-optimizer fallbacks (~200 µs) to
// pathological stalls.
var latencyBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2,
}

// latencyHistogram is a lock-free cumulative histogram of decision
// latencies, exported in Prometheus text format.
type latencyHistogram struct {
	buckets []atomic.Uint64 // one per bound, plus a final +Inf bucket
	count   atomic.Uint64
	sumNS   atomic.Uint64
}

func newLatencyHistogram() *latencyHistogram {
	return &latencyHistogram{buckets: make([]atomic.Uint64, len(latencyBounds)+1)}
}

func (h *latencyHistogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(latencyBounds); i++ {
		if s <= latencyBounds[i] {
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// write emits the histogram in Prometheus text format (cumulative
// buckets, as the exposition format requires).
func (h *latencyHistogram) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP nowlaterd_decision_latency_seconds Decision latency, all serving paths.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decision_latency_seconds histogram\n")
	var cum uint64
	for i, le := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_bucket{le=%q} %d\n", formatBound(le), cum)
	}
	cum += h.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_sum %g\n", float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "nowlaterd_decision_latency_seconds_count %d\n", h.count.Load())
}

func formatBound(le float64) string {
	if le == math.Trunc(le) {
		return fmt.Sprintf("%.1f", le)
	}
	return fmt.Sprintf("%g", le)
}
