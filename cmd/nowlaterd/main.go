// Command nowlaterd serves the paper's transmit decision over HTTP: a
// policy engine (precomputed dopt table + LRU cache + exact fallback)
// behind the internal/nlserver overload-hardened serving layer.
//
//	POST /v1/decide        one query  {"d0_m":300,"speed_mps":10,"mdata_mb":28,"rho":1.11e-4}
//	POST /v1/decide/batch  a JSON array of queries, answered in order
//	GET  /healthz          liveness + build version + table identity
//	GET  /readyz           readiness: 503 while the table builds or the
//	                       server drains, 200 with degradation detail otherwise
//	GET  /metrics          Prometheus text: decision counters by source,
//	                       admission shed/in-flight, breaker state, latency histogram
//
// Usage:
//
//	nowlaterd -build -table policy.nlpt          # precompute, write, exit
//	nowlaterd -table policy.nlpt -addr :8753     # serve a prebuilt table
//	nowlaterd -grid quick -addr :8753            # build in memory and serve
//
// When building in memory, the listener opens immediately and /readyz
// reports 503 until the table is ready — orchestrators can probe instead
// of timing the build. Overload behaviour (admission ceiling, queue bound,
// shed hint, fallback breaker) is tunable via the -max-* flags; saturated
// periods shed with 429 + Retry-After and serve breaker-refused fallbacks
// as degraded nearest-table answers rather than queueing without bound.
//
// The table file is versioned, CRC-checked and atomically written; serving
// a file built under a different platform/grid than requested fails loudly
// (policy.ErrMismatch) instead of answering from a stale calibration.
// Shutdown is graceful: SIGINT/SIGTERM flip /readyz to draining, hold
// -drain-grace, then let in-flight decisions finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"github.com/nowlater/nowlater/internal/checkpoint"
	"github.com/nowlater/nowlater/internal/nlserver"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/policy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nowlaterd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nowlaterd", flag.ContinueOnError)
	addr := fs.String("addr", ":8753", "listen address")
	tablePath := fs.String("table", "", "policy table file; empty = build in memory")
	build := fs.Bool("build", false, "build the table, write it to -table, and exit")
	platform := fs.String("platform", "airplane", "table calibration: airplane | quadrocopter")
	grid := fs.String("grid", "default", "lattice scale: default | quick")
	workers := fs.Int("workers", 0, "build parallelism (0 = one per core)")
	cacheSize := fs.Int("cache", policy.DefaultCacheSize, "exact-scenario LRU capacity (negative disables)")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "per-request handler timeout")
	ckptDir := fs.String("checkpoint", "", "journal build rows under this directory")
	resume := fs.Bool("resume", false, "resume a killed -build from -checkpoint")
	maxInFlight := fs.Int("max-inflight", 0, "admission ceiling on concurrent requests (0 = default)")
	maxQueue := fs.Int("max-queue", -1, "admission wait-queue length (-1 = default, 0 = shed instantly)")
	maxWait := fs.Duration("max-wait", 0, "admission queue-latency bound before shedding (0 = default)")
	retryAfter := fs.Duration("retry-after", 0, "backoff hint attached to 429 sheds (0 = default)")
	drainGrace := fs.Duration("drain-grace", 0, "hold /readyz at 503 draining this long before shutdown")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Fprintln(out, versionString())
		return nil
	}

	cfg, err := tableConfig(*platform, *grid)
	if err != nil {
		return err
	}

	if *build {
		if *tablePath == "" {
			return errors.New("-build needs -table to know where to write")
		}
		return buildTable(cfg, *tablePath, *workers, *ckptDir, *resume, out)
	}

	admission := overload.AdmissionConfig{
		MaxInFlight: *maxInFlight, MaxWait: *maxWait, RetryAfter: *retryAfter,
	}
	if *maxQueue >= 0 {
		admission.MaxQueue = *maxQueue
	} else {
		admission.MaxQueue = overload.DefaultAdmissionConfig().MaxQueue
	}
	srv := nlserver.New(nlserver.Config{
		Version:    versionString(),
		ReqTimeout: *reqTimeout,
		DrainGrace: *drainGrace,
		Admission:  overload.NewAdmission(admission),
		Breaker:    overload.NewBreaker(overload.BreakerConfig{}),
	})

	// A prebuilt table loads in milliseconds: do it before the listener so
	// calibration mismatches fail the process, not the first probe. An
	// in-memory build takes seconds-to-minutes: open the listener first and
	// let /readyz report 503 until the table lands.
	if *tablePath != "" {
		tbl, err := policy.LoadMatching(*tablePath, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s: %d points, config %016x\n", *tablePath, tbl.Points(), tbl.Fingerprint())
		eng, err := policy.NewEngine(tbl, *cacheSize)
		if err != nil {
			return err
		}
		srv.SetEngine(eng)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	buildErr := make(chan error, 1)
	if *tablePath == "" {
		go func() {
			start := time.Now()
			tbl, err := policy.Build(ctx, cfg, policy.BuildOptions{Workers: *workers})
			if err != nil {
				buildErr <- err
				stop() // no table will ever arrive: shut the listener down
				return
			}
			eng, err := policy.NewEngine(tbl, *cacheSize)
			if err != nil {
				buildErr <- err
				stop()
				return
			}
			srv.SetEngine(eng)
			fmt.Fprintf(out, "built %d points in %s (in memory; use -build -table to persist)\n",
				tbl.Points(), time.Since(start).Round(time.Millisecond))
		}()
	}

	fmt.Fprintf(out, "serving on %s\n", ln.Addr())
	err = srv.Serve(ctx, ln)
	select {
	case berr := <-buildErr:
		if berr != nil && !errors.Is(berr, context.Canceled) {
			return berr
		}
	default:
	}
	return err
}

// versionString reports the build identity the Go linker stamped into the
// binary (module version for released builds, VCS revision for source
// builds), surfaced by -version and /healthz.
func versionString() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "nowlaterd (no build info)"
	}
	version := info.Main.Version
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return fmt.Sprintf("nowlaterd %s (%s%s, %s)", version, rev, dirty, info.GoVersion)
	}
	return fmt.Sprintf("nowlaterd %s (%s)", version, info.GoVersion)
}

// tableConfig resolves the -platform/-grid flags into a table identity.
func tableConfig(platform, grid string) (policy.Config, error) {
	var cfg policy.Config
	switch platform {
	case "airplane":
		cfg = policy.AirplaneConfig()
	case "quadrocopter", "quad":
		cfg = policy.QuadrocopterConfig()
	default:
		return policy.Config{}, fmt.Errorf("unknown platform %q", platform)
	}
	switch grid {
	case "default":
	case "quick":
		cfg.Grid = policy.QuickGrid()
	default:
		return policy.Config{}, fmt.Errorf("unknown grid %q (default | quick)", grid)
	}
	return cfg, nil
}

// buildTable precomputes a table and persists it atomically.
func buildTable(cfg policy.Config, path string, workers int, ckptDir string, resume bool, out io.Writer) error {
	opts := policy.BuildOptions{Workers: workers}
	if ckptDir != "" {
		store, err := checkpoint.NewStore(ckptDir, resume)
		if err != nil {
			return err
		}
		opts.Checkpoint = store
	}
	start := time.Now()
	tbl, err := policy.Build(context.Background(), cfg, opts)
	if err != nil {
		return err
	}
	if err := tbl.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d points, config %016x, %s\n",
		path, tbl.Points(), tbl.Fingerprint(), time.Since(start).Round(time.Millisecond))
	return nil
}
