// Command nowlaterd serves the paper's transmit decision over HTTP: a
// policy engine (precomputed dopt table + LRU cache + exact fallback)
// behind three endpoints.
//
//	POST /v1/decide        one query  {"d0_m":300,"speed_mps":10,"mdata_mb":28,"rho":1.11e-4}
//	POST /v1/decide/batch  a JSON array of queries, answered in order
//	GET  /healthz          liveness + table identity
//	GET  /metrics          Prometheus text: request/decision counters by
//	                       source, cache hit ratio, fallback ratio, and a
//	                       decision latency histogram
//
// Usage:
//
//	nowlaterd -build -table policy.nlpt          # precompute, write, exit
//	nowlaterd -table policy.nlpt -addr :8753     # serve a prebuilt table
//	nowlaterd -grid quick -addr :8753            # build in memory and serve
//
// The table file is versioned, CRC-checked and atomically written; serving
// a file built under a different platform/grid than requested fails loudly
// (policy.ErrMismatch) instead of answering from a stale calibration.
// Shutdown is graceful: SIGINT/SIGTERM stop accepting connections and let
// in-flight decisions finish.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nowlater/nowlater/internal/checkpoint"
	"github.com/nowlater/nowlater/internal/policy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nowlaterd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nowlaterd", flag.ContinueOnError)
	addr := fs.String("addr", ":8753", "listen address")
	tablePath := fs.String("table", "", "policy table file; empty = build in memory")
	build := fs.Bool("build", false, "build the table, write it to -table, and exit")
	platform := fs.String("platform", "airplane", "table calibration: airplane | quadrocopter")
	grid := fs.String("grid", "default", "lattice scale: default | quick")
	workers := fs.Int("workers", 0, "build parallelism (0 = one per core)")
	cacheSize := fs.Int("cache", policy.DefaultCacheSize, "exact-scenario LRU capacity (negative disables)")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "per-request handler timeout")
	ckptDir := fs.String("checkpoint", "", "journal build rows under this directory")
	resume := fs.Bool("resume", false, "resume a killed -build from -checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := tableConfig(*platform, *grid)
	if err != nil {
		return err
	}

	if *build {
		if *tablePath == "" {
			return errors.New("-build needs -table to know where to write")
		}
		return buildTable(cfg, *tablePath, *workers, *ckptDir, *resume, out)
	}

	var tbl *policy.Table
	if *tablePath != "" {
		tbl, err = policy.LoadMatching(*tablePath, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s: %d points, config %016x\n", *tablePath, tbl.Points(), tbl.Fingerprint())
	} else {
		start := time.Now()
		tbl, err = policy.Build(context.Background(), cfg, policy.BuildOptions{Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "built %d points in %s (in memory; use -build -table to persist)\n",
			tbl.Points(), time.Since(start).Round(time.Millisecond))
	}

	eng, err := policy.NewEngine(tbl, *cacheSize)
	if err != nil {
		return err
	}
	srv := newServer(eng)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "serving on %s\n", ln.Addr())
	return srv.serve(ctx, ln, *reqTimeout)
}

// tableConfig resolves the -platform/-grid flags into a table identity.
func tableConfig(platform, grid string) (policy.Config, error) {
	var cfg policy.Config
	switch platform {
	case "airplane":
		cfg = policy.AirplaneConfig()
	case "quadrocopter", "quad":
		cfg = policy.QuadrocopterConfig()
	default:
		return policy.Config{}, fmt.Errorf("unknown platform %q", platform)
	}
	switch grid {
	case "default":
	case "quick":
		cfg.Grid = policy.QuickGrid()
	default:
		return policy.Config{}, fmt.Errorf("unknown grid %q (default | quick)", grid)
	}
	return cfg, nil
}

// buildTable precomputes a table and persists it atomically.
func buildTable(cfg policy.Config, path string, workers int, ckptDir string, resume bool, out io.Writer) error {
	opts := policy.BuildOptions{Workers: workers}
	if ckptDir != "" {
		store, err := checkpoint.NewStore(ckptDir, resume)
		if err != nil {
			return err
		}
		opts.Checkpoint = store
	}
	start := time.Now()
	tbl, err := policy.Build(context.Background(), cfg, opts)
	if err != nil {
		return err
	}
	if err := tbl.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d points, config %016x, %s\n",
		path, tbl.Points(), tbl.Fingerprint(), time.Since(start).Round(time.Millisecond))
	return nil
}

// maxBatch bounds one batch request; larger batches get 400, not OOM.
const maxBatch = 10000

// maxBodyBytes bounds any request body.
const maxBodyBytes = 4 << 20

// queryJSON is the wire form of a policy query.
type queryJSON struct {
	D0M      float64 `json:"d0_m"`
	SpeedMPS float64 `json:"speed_mps"`
	MdataMB  float64 `json:"mdata_mb"`
	Rho      float64 `json:"rho"`
}

func (q queryJSON) query() policy.Query {
	return policy.Query{D0M: q.D0M, SpeedMPS: q.SpeedMPS, MdataMB: q.MdataMB, Rho: q.Rho}
}

// decisionJSON is the wire form of one answered (or refused) query.
type decisionJSON struct {
	DoptM               float64 `json:"dopt_m"`
	Utility             float64 `json:"utility"`
	CommDelayS          float64 `json:"comm_delay_s"`
	Survival            float64 `json:"survival"`
	TransmitImmediately bool    `json:"transmit_immediately"`
	Source              string  `json:"source,omitempty"`
	Error               string  `json:"error,omitempty"`
}

func toJSON(d policy.Decision) decisionJSON {
	return decisionJSON{
		DoptM:               d.DoptM,
		Utility:             d.Utility,
		CommDelayS:          d.CommDelay,
		Survival:            d.Survival,
		TransmitImmediately: d.TransmitImmediately,
		Source:              d.Source.String(),
	}
}

// server is the HTTP layer over one policy engine.
type server struct {
	engine  *policy.Engine
	latency *latencyHistogram
	mux     *http.ServeMux
}

func newServer(eng *policy.Engine) *server {
	s := &server{engine: eng, latency: newLatencyHistogram(), mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/v1/decide/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// handler wraps the mux with the per-request timeout.
func (s *server) handler(timeout time.Duration) http.Handler {
	if timeout <= 0 {
		return s.mux
	}
	return http.TimeoutHandler(s.mux, timeout, "request timed out\n")
}

// serve runs the server on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// drainTimeout to finish.
func (s *server) serve(ctx context.Context, ln net.Listener, reqTimeout time.Duration) error {
	hs := &http.Server{
		Handler:           s.handler(reqTimeout),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func (s *server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q queryJSON
	if err := decodeBody(w, r, &q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	d, err := s.engine.Decide(q.query())
	s.latency.observe(time.Since(start))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, decisionJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toJSON(d))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var qs []queryJSON
	if err := decodeBody(w, r, &qs); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(qs) > maxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds the %d-query limit", len(qs), maxBatch),
			http.StatusBadRequest)
		return
	}
	out := make([]decisionJSON, len(qs))
	for i, q := range qs {
		start := time.Now()
		d, err := s.engine.Decide(q.query())
		s.latency.observe(time.Since(start))
		if err != nil {
			out[i] = decisionJSON{Error: err.Error()}
			continue
		}
		out[i] = toJSON(d)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tbl := s.engine.Table()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"points":      tbl.Points(),
		"fingerprint": fmt.Sprintf("%016x", tbl.Fingerprint()),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP nowlaterd_requests_total Decide calls that passed validation.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_requests_total counter\n")
	fmt.Fprintf(w, "nowlaterd_requests_total %d\n", st.Requests)
	fmt.Fprintf(w, "# HELP nowlaterd_decisions_total Decisions answered, by serving path.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decisions_total counter\n")
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceCache.String(), st.CacheHits)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceTable.String(), st.TableHits)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceExactOutOfGrid.String(), st.OutOfGrid)
	fmt.Fprintf(w, "nowlaterd_decisions_total{source=%q} %d\n", policy.SourceExactBoundary.String(), st.BoundaryFallbacks)
	fmt.Fprintf(w, "# HELP nowlaterd_decision_errors_total Rejected queries.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_decision_errors_total counter\n")
	fmt.Fprintf(w, "nowlaterd_decision_errors_total %d\n", st.Errors)
	fmt.Fprintf(w, "# HELP nowlaterd_cache_hit_ratio Cache hits over requests.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "nowlaterd_cache_hit_ratio %g\n", st.CacheHitRatio())
	fmt.Fprintf(w, "# HELP nowlaterd_fallback_ratio Exact-optimizer fallbacks over requests.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_fallback_ratio gauge\n")
	fmt.Fprintf(w, "nowlaterd_fallback_ratio %g\n", st.FallbackRatio())
	fmt.Fprintf(w, "# HELP nowlaterd_table_points Lattice points in the served table.\n")
	fmt.Fprintf(w, "# TYPE nowlaterd_table_points gauge\n")
	fmt.Fprintf(w, "nowlaterd_table_points %d\n", s.engine.Table().Points())
	s.latency.write(w)
}

// decodeBody parses a bounded JSON request body into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return errors.New("request body has trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
