// Command uavsim runs a full discrete-event search-and-rescue mission on
// the simulation stack: a quadrocopter scans its sector (lawnmower
// pattern), reports over the XBee-class telemetry bus, the central planner
// computes the delayed-gratification rendezvous, and the ferry ships and
// transmits its imagery to the relay — with a distance-driven failure
// injector deciding whether it survives the trip.
//
// Usage:
//
//	uavsim                      # quadrocopter scenario, seed 1
//	uavsim -seed 7 -rho 2e-3    # riskier world
//	uavsim -naive               # ignore dopt: transmit as soon as linked
//	uavsim -chaos faults.txt    # inject a scripted fault schedule
//	uavsim -resilient           # resumable transfers with retry/backoff
//	uavsim -scenario spec.json  # run a declarative scenario file instead
//	uavsim -validate spec.json  # validate + compile a Spec without running
//	uavsim -scenario spec.json -planner joint   # override the requests planner
//
// With -scenario the mission comes entirely from the JSON Spec (see
// internal/scenario): vehicles, routes, link, workloads, chaos script and
// decision policy, all executed on the one engine clock.
//
// -validate is the dry-run gate for scenario files: it loads the Spec
// (Validate runs at load, chaos script included), compiles it against the
// event-driven core, and prints the Spec fingerprint — without simulating
// anything. A CI job or a pre-flight check can reject a malformed scenario
// in milliseconds.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/autopilot"
	"github.com/nowlater/nowlater/internal/chaos"
	"github.com/nowlater/nowlater/internal/failure"
	"github.com/nowlater/nowlater/internal/geo"
	"github.com/nowlater/nowlater/internal/gps"
	"github.com/nowlater/nowlater/internal/planner"
	"github.com/nowlater/nowlater/internal/scenario"
	"github.com/nowlater/nowlater/internal/sim"
	"github.com/nowlater/nowlater/internal/stats"
	"github.com/nowlater/nowlater/internal/telemetry"
	"github.com/nowlater/nowlater/internal/transport"
	"github.com/nowlater/nowlater/internal/uav"
)

func main() {
	fs := flag.NewFlagSet("uavsim", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	rho := fs.Float64("rho", nowlater.QuadrocopterRho, "failure rate per metre")
	naive := fs.Bool("naive", false, "transmit as soon as the link opens (skip the dopt rendezvous)")
	chaosPath := fs.String("chaos", "", "scripted fault schedule file (see internal/chaos for the format)")
	resilient := fs.Bool("resilient", false, "resumable transfer with per-attempt timeout and jittered backoff")
	scenarioPath := fs.String("scenario", "", "declarative scenario Spec file (JSON; see internal/scenario)")
	validatePath := fs.String("validate", "", "validate and compile a scenario Spec file without running it")
	dumpIRPath := fs.String("dump-ir", "", "resolve a scenario Spec file and print its intermediate form (handles, chaos events, requests, table keys)")
	planner := fs.String("planner", "", "override the Spec's requests planner: fixed, greedy or joint (requires -scenario with a requests section)")
	verbose := fs.Bool("v", false, "log telemetry traffic")
	_ = fs.Parse(os.Args[1:])

	if *dumpIRPath != "" {
		if err := dumpIR(*dumpIRPath); err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			os.Exit(1)
		}
		return
	}

	if *validatePath != "" {
		if err := validateScenario(*validatePath); err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			os.Exit(1)
		}
		return
	}

	if *scenarioPath != "" {
		if err := runScenario(*scenarioPath, *planner); err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			os.Exit(1)
		}
		return
	}
	if *planner != "" {
		fmt.Fprintln(os.Stderr, "uavsim: -planner requires -scenario")
		os.Exit(1)
	}

	var sched *chaos.Schedule
	if *chaosPath != "" {
		s, err := chaos.Load(*chaosPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uavsim:", err)
			os.Exit(1)
		}
		sched = s
	}
	if err := run(*seed, *rho, *naive, *verbose, *resilient, sched); err != nil {
		fmt.Fprintln(os.Stderr, "uavsim:", err)
		os.Exit(1)
	}
}

// validateScenario is the -validate dry run: load (which validates the
// Spec, chaos script included), resolve to the Program, link against the
// event-driven core, and print the canonical fingerprint plus the
// resolution stats — no simulation.
func validateScenario(path string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	prog, err := scenario.Resolve(spec)
	if err != nil {
		return err
	}
	if _, err := scenario.Link(prog); err != nil {
		return err
	}
	st := prog.Stats()
	fmt.Printf("scenario %q: valid (%d vehicle(s), %d traffic, %d transfer(s), %d request(s), %d chaos line(s), fingerprint %016x)\n",
		spec.Name, st.Vehicles, st.Traffic, st.Transfers, st.Requests, st.ChaosLines, prog.Fingerprint())
	fmt.Printf("ir: %d handle(s), %d chaos kill event(s), %d materialized request(s), table keys %v\n",
		st.Vehicles, st.ChaosKills, st.Requests, st.TableKeys)
	return nil
}

// dumpIR is the -dump-ir debugging path: resolve the Spec and print the
// typed Program — integer handles, time-sorted chaos kills, materialized
// requests and the policy-table keys a run could demand.
func dumpIR(path string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	prog, err := scenario.Resolve(spec)
	if err != nil {
		return err
	}
	fmt.Print(prog.Describe())
	return nil
}

// runScenario loads, compiles and executes a declarative Spec, then prints
// every workload's outcome and the final vehicle states. A non-empty
// planner overrides the Spec's requests planner before compilation.
func runScenario(path, planner string) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if planner != "" {
		if spec.Requests == nil {
			return fmt.Errorf("-planner %s: scenario %q has no requests section", planner, spec.Name)
		}
		spec.Requests.Planner = planner
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	rt, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d vehicle(s), %d traffic, %d transfer(s), %d chaos line(s)\n",
		spec.Name, len(spec.Vehicles), len(spec.Traffic), len(spec.Transfers), len(spec.Chaos))
	if rs := spec.Requests; rs != nil {
		plannerName := rs.Planner
		if plannerName == "" {
			plannerName = "fixed"
		}
		fmt.Printf("requests: planner %s, collector %s\n", plannerName, rs.Collector)
	}
	res, err := rt.Run()
	if err != nil {
		return err
	}
	for _, tr := range res.Traffic {
		var sum float64
		for _, s := range tr.Samples {
			sum += s.ThroughputMb
		}
		mean := 0.0
		if len(tr.Samples) > 0 {
			mean = sum / float64(len(tr.Samples))
		}
		fmt.Printf("traffic %s->%s: %d windows from t=%.1f s, mean %.1f Mb/s\n",
			tr.From, tr.To, len(tr.Samples), tr.StartS, mean)
	}
	for _, tr := range res.Transfers {
		status := fmt.Sprintf("delivered %.1f MB in %.1f s", tr.DeliveredMB(), tr.CompletionS)
		if math.IsInf(tr.CompletionS, 1) {
			status = fmt.Sprintf("incomplete: %.1f MB before the deadline", tr.DeliveredMB())
		}
		fmt.Printf("transfer %s->%s: start t=%.1f s, %s", tr.From, tr.To, tr.StartS, status)
		if tr.DoptM > 0 {
			fmt.Printf(" (decision: d0=%.0f m -> dopt=%.0f m)", tr.D0M, tr.DoptM)
		}
		if tr.Rerouted {
			fmt.Printf(" [rerouted to fallback %s]", tr.To)
		}
		fmt.Println()
	}
	for _, rq := range res.Requests {
		if rq.Served {
			fmt.Printf("request %s: served by %s (%.1f MB, arrival t=%.1f s, pickup t=%.1f s, done t=%.1f s, tx at %.0f m)\n",
				rq.ID, rq.Vehicle, rq.SizeMB, rq.ArrivalS, rq.PickupS, rq.CompletionS, rq.TxDistM)
			continue
		}
		who := "unassigned"
		if rq.Vehicle != "" {
			who = "assigned to " + rq.Vehicle
		}
		fmt.Printf("request %s: EXPIRED at t=%.1f s (%.1f MB, %s)\n", rq.ID, rq.DeadlineS, rq.SizeMB, who)
	}
	for _, v := range res.Vehicles {
		state := "ok"
		if v.Failed {
			state = "FAILED"
		}
		fmt.Printf("vehicle %s: %s at %s, route done=%v", v.ID, state, v.Position, v.RouteDone)
		if len(res.Requests) > 0 {
			fmt.Printf(", served %d, expired %d, energy %.0f battery-s", v.Served, v.Expired, v.EnergyUsedS)
		}
		fmt.Println()
	}
	st := rt.Stats()
	fmt.Printf("event core: %d events processed, %d sub-ticks stepped, %d elided\n",
		st.EventsProcessed, st.SubTicksStepped, st.SubTicksElided)
	fmt.Printf("scenario clock at exit: %.1f s (fingerprint %016x)\n", res.DurationS, res.Fingerprint)
	return nil
}

func run(seed int64, rho float64, naive, verbose, resilient bool, sched *chaos.Schedule) error {
	engine := sim.NewEngine()
	rng := stats.NewRNG(seed)
	logf := func(format string, args ...any) {
		fmt.Printf("[%8.2fs] "+format+"\n", append([]any{engine.Now()}, args...)...)
	}

	// --- Vehicles: the scanning ferry and a hovering relay. -------------
	plan := nowlater.QuadrocopterSensingPlan()
	ferryV, err := uav.NewVehicle("ferry", uav.Arducopter(), geo.Vec3{X: 200, Y: 0, Z: plan.AltitudeM})
	if err != nil {
		return err
	}
	ferry, err := autopilot.New(ferryV)
	if err != nil {
		return err
	}
	relayV, err := uav.NewVehicle("relay", uav.Arducopter(), geo.Vec3{X: 120, Y: -60, Z: plan.AltitudeM})
	if err != nil {
		return err
	}
	relay, err := autopilot.New(relayV)
	if err != nil {
		return err
	}
	relay.Hold(relayV.Position())

	// --- Failure injection (exponential in distance travelled). ---------
	fm, err := failure.NewModel(rho)
	if err != nil {
		return err
	}
	injector := failure.NewInjector(fm, rng.Substream(seed, "failure"))
	logf("mission start: rho=%.3g /m (mean distance to failure %.0f m), sampled failure at odometer %.0f m",
		rho, fm.MeanDistanceToFailure(), injector.FailAt())
	if sched != nil && !sched.Empty() {
		logf("chaos schedule armed: faults until t=%.0f s", sched.HorizonS())
	}

	// --- GPS receiver on the ferry (chaos can suppress or degrade it). ---
	gpsRx, err := gps.NewReceiver(gps.DefaultParams(), geo.NewFrame(geo.LatLon{Lat: 47.3769, Lon: 8.5417}),
		rng.Substream(seed, "gps/ferry"))
	if err != nil {
		return err
	}
	if sched != nil {
		gpsRx.SetFault(func(now float64) (bool, float64) {
			return sched.GPSOutage("ferry", now), sched.GPSSigmaScale("ferry", now)
		})
	}

	// --- Telemetry bus + central planner. --------------------------------
	bus, err := telemetry.NewBus(telemetry.DefaultParams(), engine)
	if err != nil {
		return err
	}
	if sched != nil {
		bus.SetFault(sched.TelemetryDrop)
	}
	sc := nowlater.QuadrocopterBaseline()
	pcfg := planner.Config{
		Scenario:   sc,
		LinkRangeM: 150,
	}
	if sched != nil {
		// Under chaos the beacon stream is lossy: age out silent vehicles
		// so the planner degrades to transmit-now instead of trusting a
		// stale rendezvous.
		pcfg.StaleAfterS = 5
	}
	pl, err := planner.New(pcfg)
	if err != nil {
		return err
	}
	gcsNode := &telemetry.Node{
		ID:       "gcs",
		Position: func() geo.Vec3 { return geo.Vec3{} },
		OnStatus: func(st telemetry.Status) {
			pl.Observe(st)
			if verbose {
				logf("gcs <- status %s pos=%s data=%.1fMB", st.From, st.Position, st.DataMB)
			}
		},
	}
	var ferryWaypoint *telemetry.Waypoint
	ferryNode := &telemetry.Node{
		ID:       "ferry",
		Position: ferryV.Position,
		OnWaypoint: func(wp telemetry.Waypoint) {
			ferryWaypoint = &wp
			if verbose {
				logf("ferry <- waypoint %s", wp.Target)
			}
		},
	}
	relayNode := &telemetry.Node{ID: "relay", Position: relayV.Position}
	for _, n := range []*telemetry.Node{gcsNode, ferryNode, relayNode} {
		if err := bus.Attach(n); err != nil {
			return err
		}
	}

	// --- Phase 1: scan the sector (abbreviated lawnmower). --------------
	waypoints := plan.LawnmowerWaypoints(0)
	if len(waypoints) > 6 {
		waypoints = waypoints[:6] // a few lanes suffice for the demo
	}
	sectorOrigin := geo.Vec3{X: 160, Y: 20}
	scanDone := false
	wpIdx := 0
	var nextLeg func()
	nextLeg = func() {
		if wpIdx >= len(waypoints) {
			scanDone = true
			return
		}
		wp := waypoints[wpIdx]
		wpIdx++
		ferry.GoTo(sectorOrigin.Add(geo.Vec3{X: wp[0], Y: wp[1], Z: wp[2]}), 0, nextLeg)
	}
	nextLeg()

	mdataMB := plan.DataBytes() / 1e6
	logf("scanning %vx%v m sector at %v m: %d lanes, Mdata=%.1f MB",
		plan.Sector.WidthM, plan.Sector.HeightM, plan.AltitudeM, len(waypoints)/2, mdataMB)

	// Control loop: flight at the mission-logic cadence + 1 Hz telemetry.
	const tick = scenario.MissionTickS
	var controlTick func()
	lastBeacon := -1.0
	controlTick = func() {
		ferry.Step(tick)
		relay.Step(tick)
		gpsRx.Observe(engine.Now(), ferryV.Position())
		if sched != nil {
			if t, ok := sched.VehicleFailTime("ferry"); ok && engine.Now() >= t && !injector.Tripped() {
				logf("CHAOS: scripted ferry failure at t=%.0f s", t)
				injector.Trip()
			}
			if t, ok := sched.VehicleFailTime("relay"); ok && engine.Now() >= t && !relayV.Failed() {
				logf("CHAOS: scripted relay failure at t=%.0f s", t)
				relayV.Fail()
			}
		}
		if injector.Check(ferryV.Odometer()) && !ferryV.Failed() {
			ferryV.Fail()
			logf("FAILURE: ferry lost at odometer %.0f m, position %s", ferryV.Odometer(), ferryV.Position())
			engine.Stop()
			return
		}
		if engine.Now()-lastBeacon >= 1.0 {
			lastBeacon = engine.Now()
			_ = bus.SendStatus("ferry", telemetry.Status{
				Position: ferryV.Position(), Velocity: ferryV.Velocity(),
				Battery: ferryV.BatteryFraction(),
				HasData: scanDone, DataMB: mdataMB,
			})
			_ = bus.SendStatus("relay", telemetry.Status{Position: relayV.Position(), Battery: relayV.BatteryFraction()})
		}
		if _, err := engine.After(tick, controlTick); err != nil {
			logf("scheduler error: %v", err)
		}
	}
	if _, err := engine.After(tick, controlTick); err != nil {
		return err
	}

	// Run until the scan completes.
	for !scanDone && !ferryV.Failed() {
		if err := engine.RunUntil(engine.Now() + 5); err != nil {
			break
		}
		if engine.Now() > 3600 {
			return fmt.Errorf("scan never completed")
		}
	}
	if ferryV.Failed() {
		logf("mission failed during scanning (%.1f MB undelivered)", mdataMB)
		return nil
	}
	logf("scan complete after %.0f m of flight; battery %.0f%%",
		ferryV.Odometer(), ferryV.BatteryFraction()*100)

	// --- Phase 2: planner decides the rendezvous. ------------------------
	if err := engine.RunUntil(engine.Now() + 2); err != nil { // let beacons flow
		return err
	}
	// If the scan ended outside link range, close in until the planner has
	// a decision to make (the moment the paper calls "coming in
	// communication range", defining d0).
	dec, ok, err := pl.PlanDeliveryAt("ferry", "relay", engine.Now())
	if err != nil {
		return err
	}
	if !ok {
		logf("outside link range (%.0f m): approaching the relay", ferryV.Position().Dist(relayV.Position()))
		ferry.GoTo(relayV.Position(), 0, nil)
		for !ok && !ferryV.Failed() && engine.Now() < 3600 {
			if err := engine.RunUntil(engine.Now() + 1); err != nil {
				break
			}
			dec, ok, err = pl.PlanDeliveryAt("ferry", "relay", engine.Now())
			if err != nil {
				return err
			}
		}
		if ferryV.Failed() {
			logf("mission failed while approaching the relay")
			return nil
		}
		if !ok {
			return fmt.Errorf("planner never reached a decision")
		}
		ferry.Hold(ferryV.Position())
	}
	target := dec.Rendezvous
	if naive {
		target = ferryV.Position()
		logf("naive mode: transmitting from the current position (d=%.0f m)", dec.D0M)
	} else {
		logf("planner: d0=%.0f m → dopt=%.0f m (expected Cdelay %.0f s, survival %.3f)",
			dec.D0M, dec.Optimum.DoptM, dec.Optimum.CommDelay, dec.Optimum.Survival)
		if dec.Degraded {
			logf("planner: telemetry stale — degraded to transmit-now")
		}
		commanded := true
		if err := bus.SendWaypoint("gcs", dec.WaypointFor(ferryV.CruiseSpeedMPS)); err != nil {
			if !errors.Is(err, telemetry.ErrOutOfRange) {
				return err
			}
			// The command radio cannot reach the ferry right now: a lost
			// waypoint is a degraded mission, not a crashed one.
			logf("waypoint lost (out of telemetry range): transmitting from the current position")
			commanded = false
		}
		if commanded {
			if err := engine.RunUntil(engine.Now() + 1); err != nil {
				return err
			}
		}
		if commanded && ferryWaypoint == nil {
			// Dropped by the chaos layer between the bus and the ferry.
			logf("waypoint never arrived over telemetry: transmitting from the current position")
			commanded = false
		}
		if commanded {
			arrived := false
			ferry.GoTo(ferryWaypoint.Target, ferryWaypoint.SpeedMPS, func() { arrived = true })
			for !arrived && !ferryV.Failed() {
				if err := engine.RunUntil(engine.Now() + 1); err != nil {
					break
				}
			}
			if ferryV.Failed() {
				logf("mission failed while shipping to the rendezvous")
				return nil
			}
			logf("at rendezvous: distance to relay %.0f m", ferryV.Position().Dist(relayV.Position()))
		}
	}
	_ = target

	// --- Phase 3: transmit the batch over the packet-level link. ---------
	lcfg := nowlater.DefaultLinkConfig()
	lcfg.Seed = seed
	lcfg.Label = "uavsim"
	l, err := nowlater.NewLink(lcfg, nil)
	if err != nil {
		return err
	}
	l.SetNow(engine.Now())
	if sched != nil {
		l.SetFault(func(now float64) (bool, float64) {
			out := sched.LinkOutage("ferry", now) || sched.LinkOutage("relay", now)
			for _, id := range []string{"ferry", "relay"} {
				if t, ok := sched.VehicleFailTime(id); ok && now >= t {
					out = true
				}
			}
			return out, sched.LinkExtraLossDB("ferry", now) + sched.LinkExtraLossDB("relay", now)
		})
	}
	geom := func(float64) nowlater.Geometry {
		return nowlater.Geometry{
			DistanceM:   ferryV.Position().Dist(relayV.Position()),
			AltitudeM:   plan.AltitudeM,
			RelSpeedMPS: ferryV.Velocity().Sub(relayV.Velocity()).Norm(),
		}
	}
	var res transport.BatchResult
	if resilient {
		rcfg := transport.DefaultResilientConfig(int(plan.DataBytes()), 600)
		rcfg.Seed = seed
		rcfg.Label = "uavsim/resilient"
		rres, rerr := transport.ResilientTransfer(l, rcfg, geom)
		if rerr != nil {
			return rerr
		}
		logf("resilient transfer: %d attempt(s), %.1f s backing off, resumed=%v",
			rres.Attempts, rres.BackoffS, rres.Resumed)
		res = rres.BatchResult
	} else {
		res, err = transport.TransferBatch(l, transport.BatchConfig{
			Bytes: int(plan.DataBytes()), DeadlineS: 600, Reliable: true,
		}, geom)
		if err != nil {
			return err
		}
	}
	if l.OutageSeconds > 0 {
		logf("chaos: link down %.1f s during the transfer", l.OutageSeconds)
	}
	if gpsRx.Outages > 0 {
		logf("chaos: %d GPS fixes suppressed during the mission", gpsRx.Outages)
	}
	if math.IsInf(res.CompletionS, 1) {
		logf("transfer did not complete within the deadline (%.1f of %.1f MB)",
			float64(res.DeliveredBytes)/1e6, mdataMB)
		return nil
	}
	logf("delivered %.1f MB in %.1f s (%.1f Mb/s effective, %.2f MB retransmitted)",
		float64(res.DeliveredBytes)/1e6, res.CompletionS,
		float64(res.DeliveredBytes)*8/res.CompletionS/1e6,
		float64(res.RetransmittedBytes)/1e6)
	logf("mission complete: total elapsed %.1f s, ferry flew %.0f m, battery %.0f%% left",
		engine.Now()+res.CompletionS, ferryV.Odometer(), ferryV.BatteryFraction()*100)
	return nil
}
