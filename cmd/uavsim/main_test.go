package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/chaos"
)

// captureRun executes the mission and returns its stdout log.
func captureRun(t *testing.T, seed int64, rho float64, naive bool) string {
	return captureChaosRun(t, seed, rho, naive, false, nil)
}

func captureChaosRun(t *testing.T, seed int64, rho float64, naive, resilient bool,
	sched *chaos.Schedule) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(seed, rho, naive, false, resilient, sched)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	out := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}

func TestMissionCompletesWithoutFailure(t *testing.T) {
	out := captureRun(t, 1, 0, false)
	for _, want := range []string{"scan complete", "planner:", "at rendezvous", "mission complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

func TestMissionNaiveSkipsRendezvous(t *testing.T) {
	out := captureRun(t, 1, 0, true)
	if !strings.Contains(out, "naive mode") {
		t.Errorf("naive marker missing:\n%s", out)
	}
	if strings.Contains(out, "at rendezvous") {
		t.Errorf("naive mission flew a rendezvous:\n%s", out)
	}
}

func TestMissionFailureIsReported(t *testing.T) {
	out := captureRun(t, 5, 2e-3, false)
	if !strings.Contains(out, "FAILURE") && !strings.Contains(out, "mission failed") {
		t.Errorf("high-rho mission did not fail:\n%s", out)
	}
}

func TestMissionEmptyChaosScheduleIsTransparent(t *testing.T) {
	clean := captureRun(t, 1, 0, false)
	chaosed := captureChaosRun(t, 1, 0, false, false, &chaos.Schedule{Seed: 9})
	if clean != chaosed {
		t.Errorf("empty chaos schedule perturbed the mission:\n--- clean ---\n%s\n--- chaos ---\n%s",
			clean, chaosed)
	}
}

func TestMissionChaosOutageAndResilience(t *testing.T) {
	sched, err := chaos.ParseString("link outage * 128 140\n")
	if err != nil {
		t.Fatal(err)
	}
	out := captureChaosRun(t, 1, 0, false, true, sched)
	for _, want := range []string{"chaos schedule armed", "resilient transfer:", "chaos: link down", "mission complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

// -validate must accept a valid Spec file (printing its fingerprint, not
// running it) and reject a malformed chaos script with the line number.
func TestValidateScenarioDryRun(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{
		"name": "dry-run",
		"seed": 4,
		"duration_s": 5,
		"vehicles": [
			{"id": "a", "platform": "arducopter", "start": {"Z": 20}, "hold": true},
			{"id": "b", "platform": "arducopter", "start": {"X": 50, "Z": 20}, "hold": true}
		],
		"transfers": [{"from": "a", "to": "b", "size_mb": 0.1, "deadline_s": 10}],
		"chaos": ["vehicle fail a 3"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	vErr := validateScenario(good)
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if vErr != nil {
		t.Fatalf("valid spec rejected: %v", vErr)
	}
	for _, want := range []string{`scenario "dry-run": valid`, "fingerprint "} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(string(out), "clock at exit") {
		t.Error("dry run appears to have executed the scenario")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{
		"name": "bad-chaos",
		"seed": 4,
		"vehicles": [{"id": "a", "platform": "arducopter", "start": {"Z": 20}, "hold": true}],
		"chaos": ["vehicle fail a 3", "link outage a oops 9"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateScenario(bad); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed chaos accepted or line not named: %v", err)
	}

	if err := validateScenario(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// -scenario with -planner overrides the requests planner, prints per-request
// outcomes, and rejects specs that have no requests section.
func TestRunScenarioPlannerOverride(t *testing.T) {
	example := filepath.Join("..", "..", "examples", "scenario", "joint_pickup.json")
	capture := func(planner string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := runScenario(example, planner)
		w.Close()
		os.Stdout = old
		out, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatalf("runScenario(%q, %q): %v", example, planner, runErr)
		}
		return string(out)
	}

	joint := capture("")
	for _, want := range []string{"requests: planner joint", "request survey-alpha:", "served "} {
		if !strings.Contains(joint, want) {
			t.Errorf("joint output missing %q:\n%s", want, joint)
		}
	}
	fixed := capture("fixed")
	if !strings.Contains(fixed, "requests: planner fixed") {
		t.Errorf("override not applied:\n%s", fixed)
	}
	if fixed == joint {
		t.Error("fixed override produced the identical run as joint")
	}

	if err := runScenario(example, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown planner") {
		t.Fatalf("bogus planner accepted: %v", err)
	}
	noReq := filepath.Join("..", "..", "examples", "scenario", "three_uav_failover.json")
	if err := runScenario(noReq, "joint"); err == nil || !strings.Contains(err.Error(), "no requests section") {
		t.Fatalf("planner override without a requests section accepted: %v", err)
	}
}
