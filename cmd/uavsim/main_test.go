package main

import (
	"os"
	"strings"
	"testing"
)

// captureRun executes the mission and returns its stdout log.
func captureRun(t *testing.T, seed int64, rho float64, naive bool) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(seed, rho, naive, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	out := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}

func TestMissionCompletesWithoutFailure(t *testing.T) {
	out := captureRun(t, 1, 0, false)
	for _, want := range []string{"scan complete", "planner:", "at rendezvous", "mission complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

func TestMissionNaiveSkipsRendezvous(t *testing.T) {
	out := captureRun(t, 1, 0, true)
	if !strings.Contains(out, "naive mode") {
		t.Errorf("naive marker missing:\n%s", out)
	}
	if strings.Contains(out, "at rendezvous") {
		t.Errorf("naive mission flew a rendezvous:\n%s", out)
	}
}

func TestMissionFailureIsReported(t *testing.T) {
	out := captureRun(t, 5, 2e-3, false)
	if !strings.Contains(out, "FAILURE") && !strings.Contains(out, "mission failed") {
		t.Errorf("high-rho mission did not fail:\n%s", out)
	}
}
