package main

import (
	"os"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/chaos"
)

// captureRun executes the mission and returns its stdout log.
func captureRun(t *testing.T, seed int64, rho float64, naive bool) string {
	return captureChaosRun(t, seed, rho, naive, false, nil)
}

func captureChaosRun(t *testing.T, seed int64, rho float64, naive, resilient bool,
	sched *chaos.Schedule) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(seed, rho, naive, false, resilient, sched)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	out := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}

func TestMissionCompletesWithoutFailure(t *testing.T) {
	out := captureRun(t, 1, 0, false)
	for _, want := range []string{"scan complete", "planner:", "at rendezvous", "mission complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

func TestMissionNaiveSkipsRendezvous(t *testing.T) {
	out := captureRun(t, 1, 0, true)
	if !strings.Contains(out, "naive mode") {
		t.Errorf("naive marker missing:\n%s", out)
	}
	if strings.Contains(out, "at rendezvous") {
		t.Errorf("naive mission flew a rendezvous:\n%s", out)
	}
}

func TestMissionFailureIsReported(t *testing.T) {
	out := captureRun(t, 5, 2e-3, false)
	if !strings.Contains(out, "FAILURE") && !strings.Contains(out, "mission failed") {
		t.Errorf("high-rho mission did not fail:\n%s", out)
	}
}

func TestMissionEmptyChaosScheduleIsTransparent(t *testing.T) {
	clean := captureRun(t, 1, 0, false)
	chaosed := captureChaosRun(t, 1, 0, false, false, &chaos.Schedule{Seed: 9})
	if clean != chaosed {
		t.Errorf("empty chaos schedule perturbed the mission:\n--- clean ---\n%s\n--- chaos ---\n%s",
			clean, chaosed)
	}
}

func TestMissionChaosOutageAndResilience(t *testing.T) {
	sched, err := chaos.ParseString("link outage * 128 140\n")
	if err != nil {
		t.Fatal(err)
	}
	out := captureChaosRun(t, 1, 0, false, true, sched)
	for _, want := range []string{"chaos schedule armed", "resilient transfer:", "chaos: link down", "mission complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}
