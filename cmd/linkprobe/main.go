// Command linkprobe measures the throughput-vs-distance law s(d) of the
// simulated aerial link — the empirical input the delayed-gratification
// optimizer needs — and writes it as a CSV table that `nowlater
// -throughput <file>` (and core.LoadTableThroughputCSV) consume.
//
// Usage:
//
//	linkprobe -alt 10 -speed 0 -min 20 -max 100 -step 10 -o squad.csv
//	linkprobe -alt 90 -speed 18 -min 20 -max 320 -step 20   # airplane-ish
package main

import (
	"flag"
	"fmt"
	"os"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/core"
	"github.com/nowlater/nowlater/internal/stats"
)

func main() {
	fs := flag.NewFlagSet("linkprobe", flag.ExitOnError)
	alt := fs.Float64("alt", 10, "link altitude AGL (m)")
	speed := fs.Float64("speed", 0, "relative speed between the platforms (m/s)")
	minD := fs.Float64("min", 20, "first probe distance (m)")
	maxD := fs.Float64("max", 100, "last probe distance (m)")
	step := fs.Float64("step", 10, "probe spacing (m)")
	trials := fs.Int("trials", 7, "independent trials per distance")
	duration := fs.Float64("duration", 8, "simulated seconds per trial")
	seed := fs.Int64("seed", 1, "root random seed")
	out := fs.String("o", "", "output CSV path (default stdout)")
	_ = fs.Parse(os.Args[1:])

	if err := run(*alt, *speed, *minD, *maxD, *step, *trials, *duration, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "linkprobe:", err)
		os.Exit(1)
	}
}

func run(alt, speed, minD, maxD, step float64, trials int, duration float64, seed int64, out string) error {
	if step <= 0 || maxD < minD {
		return fmt.Errorf("bad probe range [%v, %v] step %v", minD, maxD, step)
	}
	cfg := nowlater.DefaultLinkConfig()
	cfg.Seed = seed

	var ds, meds []float64
	for d := minD; d <= maxD+1e-9; d += step {
		g := nowlater.Geometry{DistanceM: d, AltitudeM: alt, RelSpeedMPS: speed}
		probeCfg := cfg
		probeCfg.Label = fmt.Sprintf("linkprobe/d%.0f", d)
		xs, err := nowlater.MeasureTrials(probeCfg, nil, g, duration, trials)
		if err != nil {
			return err
		}
		med := stats.MustMedian(xs)
		ds = append(ds, d)
		meds = append(meds, med)
		fmt.Fprintf(os.Stderr, "d=%6.1f m  median %6.2f Mb/s  (%d trials)\n", d, med, trials)
	}

	if fit, err := stats.FitLog2(ds, meds); err == nil {
		fmt.Fprintf(os.Stderr, "fit: s(d) = %.2f·log2(d) + %.2f Mb/s, R² = %.3f\n", fit.A, fit.B, fit.R2)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return core.WriteTableThroughputCSV(w, ds, meds)
}
