package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nowlater/nowlater/internal/core"
)

func TestProbeWritesLoadableTable(t *testing.T) {
	out := filepath.Join(t.TempDir(), "probe.csv")
	if err := run(10, 0, 20, 60, 20, 2, 3, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := core.LoadTableThroughputCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	// Near beats far on the quad-altitude link.
	if tab.Bps(20) <= tab.Bps(60) {
		t.Fatalf("probe table not decreasing: %v vs %v", tab.Bps(20), tab.Bps(60))
	}
}

func TestProbeValidation(t *testing.T) {
	if err := run(10, 0, 60, 20, 10, 2, 3, 1, ""); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := run(10, 0, 20, 60, 0, 2, 3, 1, ""); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestProbeStdout(t *testing.T) {
	// Redirect stdout to verify the CSV lands there without -o.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	err = run(10, 0, 20, 40, 20, 1, 2, 1, "")
	w.Close()
	os.Stdout = old
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	if !strings.Contains(string(buf[:n]), "distance_m,throughput_mbps") {
		t.Fatalf("stdout csv missing header: %q", string(buf[:n]))
	}
}
