package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with args and returns its stdout.
func capture(t *testing.T, args ...string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCLIBaselines(t *testing.T) {
	out := capture(t, "-platform", "airplane")
	for _, want := range []string{"dopt", "communication delay", "U(d)", "strategy", "ship"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out = capture(t, "-platform", "quadrocopter", "-curve=false", "-strategies=false")
	if strings.Contains(out, "U(d) vs distance") {
		t.Error("curve printed despite -curve=false")
	}
}

func TestCLIOverrides(t *testing.T) {
	out := capture(t, "-platform", "airplane", "-d0", "150", "-mdata", "5", "-speed", "15",
		"-rho", "0.002", "-curve=false", "-strategies=false")
	if !strings.Contains(out, "d0=150") || !strings.Contains(out, "Mdata=5.0") {
		t.Errorf("overrides not applied:\n%s", out)
	}
}

func TestCLIHighRhoTransmitsImmediately(t *testing.T) {
	out := capture(t, "-platform", "airplane", "-rho", "0.05", "-curve=false", "-strategies=false")
	if !strings.Contains(out, "transmit immediately") {
		t.Errorf("high rho should transmit immediately:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	f, _ := os.CreateTemp(t.TempDir(), "out")
	if err := run([]string{"-platform", "zeppelin"}, f); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run([]string{"-rho", "-0.5", "-platform", "airplane"}, f); err != nil {
		// -rho < 0 means "baseline default", so this must succeed.
		t.Fatalf("negative rho sentinel rejected: %v", err)
	}
	if err := run([]string{"-throughput", "/does/not/exist.csv"}, f); err == nil {
		t.Fatal("missing throughput file accepted")
	}
}

func TestCLIThroughputTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tab.csv")
	csv := "distance_m,throughput_mbps\n20,25\n60,10\n100,2\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, "-platform", "quadrocopter", "-throughput", path,
		"-curve=false", "-strategies=false")
	if !strings.Contains(out, "dopt") {
		t.Errorf("no decision printed:\n%s", out)
	}
}
