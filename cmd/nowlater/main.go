// Command nowlater computes the delayed-gratification transmit decision of
// the paper: given the distance d0 at which the link opens, the batch size,
// cruise speed and failure rate, it prints the optimal transmit distance
// dopt, the expected communication delay, the survival probability of the
// shipping leg, a U(d) curve, and the strategy comparison of Fig. 1.
//
// Usage:
//
//	nowlater -platform airplane -d0 300 -mdata 28 -speed 10 -rho 1.11e-4
//	nowlater -platform quadrocopter
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	nowlater "github.com/nowlater/nowlater"
	"github.com/nowlater/nowlater/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nowlater:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("nowlater", flag.ContinueOnError)
	platform := fs.String("platform", "airplane", "baseline scenario: airplane | quadrocopter")
	d0 := fs.Float64("d0", 0, "distance at which the link opens (m); 0 = baseline default")
	mdata := fs.Float64("mdata", 0, "batch size (MB); 0 = baseline default")
	speed := fs.Float64("speed", 0, "cruise speed (m/s); 0 = baseline default")
	rho := fs.Float64("rho", -1, "failure rate per metre; <0 = baseline default")
	curve := fs.Bool("curve", true, "print the U(d) curve")
	strategies := fs.Bool("strategies", true, "print the Fig 1 strategy comparison")
	throughputCSV := fs.String("throughput", "", "CSV throughput table (distance_m,throughput_mbps) from linkprobe or field data")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc nowlater.Scenario
	switch *platform {
	case "airplane":
		sc = nowlater.AirplaneBaseline()
	case "quadrocopter", "quad":
		sc = nowlater.QuadrocopterBaseline()
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}
	if *d0 > 0 {
		sc.D0M = *d0
	}
	if *mdata > 0 {
		sc.MdataBytes = *mdata * 1e6
	}
	if *speed > 0 {
		sc.SpeedMPS = *speed
	}
	if *rho >= 0 {
		m, err := nowlater.NewFailureModel(*rho)
		if err != nil {
			return err
		}
		sc.Failure = m
	}
	if *throughputCSV != "" {
		f, err := os.Open(*throughputCSV)
		if err != nil {
			return err
		}
		tab, err := nowlater.LoadThroughputCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		sc.Throughput = tab
	}

	opt, err := sc.Optimize()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scenario: %s  d0=%.0f m  Mdata=%.1f MB  v=%.1f m/s  rho=%.3g /m\n",
		*platform, sc.D0M, sc.MdataBytes/1e6, sc.SpeedMPS, sc.Failure.Rho)
	fmt.Fprintf(out, "optimal transmit distance dopt = %.1f m\n", opt.DoptM)
	fmt.Fprintf(out, "  communication delay  Cdelay(dopt) = %.1f s (ship %.1f s + transmit %.1f s)\n",
		opt.CommDelay, sc.ShipTime(opt.DoptM), sc.TxTime(opt.DoptM))
	fmt.Fprintf(out, "  shipping-leg survival δ(dopt)    = %.4f\n", opt.Survival)
	fmt.Fprintf(out, "  utility U(dopt)                   = %.5f\n", opt.Utility)
	if opt.TransmitImmediately {
		fmt.Fprintln(out, "  → transmit immediately: moving closer does not pay")
	} else {
		fmt.Fprintf(out, "  → ship %.1f m closer before transmitting (vs %.1f s transmitting now)\n",
			sc.D0M-opt.DoptM, sc.CommDelay(sc.D0M))
	}

	if *curve {
		pts, err := sc.UtilityCurve(96)
		if err != nil {
			return err
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.DM, p.Utility
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.LinePlot("U(d) vs distance (maximum at dopt)",
			[]trace.Series{{Name: "U(d)", X: xs, Y: ys}}, 64, 12))
	}

	if *strategies {
		fmt.Fprintln(out)
		fmt.Fprintln(out, "strategy comparison (analytic, paper throughput fit):")
		pen := nowlater.DefaultSpeedPenalty()
		rows := [][]string{}
		for _, st := range []nowlater.Strategy{nowlater.TransmitNow, nowlater.ShipThenTransmit, nowlater.MoveAndTransmit} {
			o, err := sc.RunStrategy(st, opt.DoptM, pen)
			if err != nil {
				return err
			}
			comp := fmt.Sprintf("%.1f s", o.CompletionS)
			if math.IsInf(o.CompletionS, 1) {
				comp = "never"
			}
			rows = append(rows, []string{o.Strategy.String(), fmt.Sprintf("%.0f m", o.TargetDM), comp})
		}
		fmt.Fprint(out, trace.Table("", []string{"strategy", "transmit at", "completes in"}, rows))
	}
	return nil
}
