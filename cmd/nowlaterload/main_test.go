package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/nowlater/nowlater/internal/nlserver"
	"github.com/nowlater/nowlater/internal/overload"
	"github.com/nowlater/nowlater/internal/policy"
)

func quickServer(t *testing.T, cfg nlserver.Config) *httptest.Server {
	t.Helper()
	pcfg := policy.AirplaneConfig()
	pcfg.Grid = policy.QuickGrid()
	tbl, err := policy.Build(context.Background(), pcfg, policy.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := policy.NewEngine(tbl, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv := httptest.NewServer(nlserver.New(cfg).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestLoadRunReport(t *testing.T) {
	srv := quickServer(t, nlserver.Config{})
	var out bytes.Buffer
	err := run([]string{
		"-url", srv.URL, "-rate", "300", "-duration", "300ms",
		"-exact-frac", "0.2", "-seed", "7",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Sent == 0 || rep.Completed == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Completed+rep.Failed != rep.Sent {
		t.Fatalf("sent %d != completed %d + failed %d", rep.Sent, rep.Completed, rep.Failed)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("implausible percentiles: %+v", rep)
	}
	if rep.AchievedPerSec <= 0 {
		t.Fatalf("achieved rate %v", rep.AchievedPerSec)
	}
}

// TestLoadObservesShedsWithRetryAfter points the generator at a one-slot
// server whose only slot the test itself holds for the whole run: every
// arrival must shed, and every shed must surface in the report carrying
// Retry-After. Holding the slot directly (rather than hoping arrivals
// collide) keeps the test deterministic at any machine speed.
func TestLoadObservesShedsWithRetryAfter(t *testing.T) {
	adm := overload.NewAdmission(overload.AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 0, MaxWait: time.Millisecond, RetryAfter: 20 * time.Millisecond,
	})
	release, err := adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	srv := quickServer(t, nlserver.Config{Admission: adm})
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	err = run([]string{
		"-url", srv.URL, "-rate", "300", "-duration", "200ms",
		"-exact-frac", "1", "-seed", "3", "-out", path,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ShedsSeen == 0 {
		t.Fatalf("one-slot server shed nothing: %+v", rep)
	}
	if !rep.RetryAfterSeen || rep.ShedsMissingRA != 0 {
		t.Fatalf("429s without Retry-After: %+v", rep)
	}
}

func TestVersionAndFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nowlaterload") {
		t.Fatalf("version output %q", out.String())
	}
	if err := run([]string{"-rate", "0"}, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestPercentiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 1000; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	p50, p99, p999, max := percentiles(ds)
	if p50 < 499 || p50 > 501 || p99 < 989 || p99 > 991 || p999 < 998 || max != 1000 {
		t.Fatalf("p50=%v p99=%v p999=%v max=%v", p50, p99, p999, max)
	}
	if a, b, c, d := percentiles(nil); a != 0 || b != 0 || c != 0 || d != 0 {
		t.Fatal("empty percentiles not zero")
	}
}
