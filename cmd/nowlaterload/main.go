// Command nowlaterload drives nowlaterd with open-loop load: Poisson
// arrivals at a fixed mean rate, independent of completions, the way real
// traffic behaves. A closed-loop generator (send, wait, send) slows down
// exactly when the server does, hiding the overload it was meant to
// measure; an open-loop one keeps arriving and exposes queueing, shedding
// and degraded serving.
//
// The query mix is reproducible from -seed: mostly in-grid lookups
// (cache/table speed) with an -exact-frac slice of out-of-grid queries
// that force ~180 µs exact solves — the expensive traffic that saturates
// the fallback path.
//
// The run report is one JSON object (stdout, or -out): offered vs achieved
// rate, completion and failure counts, degraded-answer count, shed/retry
// counters from the resilient client, whether any 429 carried Retry-After,
// and latency percentiles (p50/p99/p99.9). The CI smoke job asserts on
// these fields; the svcchaos experiment records the same shape.
//
// Usage:
//
//	nowlaterload -url http://127.0.0.1:8753 -rate 500 -duration 10s
//	nowlaterload -url ... -rate 2000 -exact-frac 0.5 -naive   # baseline client
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nowlater/nowlater/internal/nlclient"
	"github.com/nowlater/nowlater/internal/nlwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nowlaterload:", err)
		os.Exit(1)
	}
}

// Report is the JSON run summary.
type Report struct {
	// OfferedPerSec is the configured arrival rate; AchievedPerSec is
	// completions over wall time.
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	DurationS      float64 `json:"duration_s"`
	Sent           int64   `json:"sent"`
	Completed      int64   `json:"completed"`
	Failed         int64   `json:"failed"`
	// Degraded counts answers marked as nearest-table approximations.
	Degraded int64 `json:"degraded"`
	// ShedsSeen and Retries come from the client; RetryAfterSeen reports
	// whether every observed 429 carried a parseable Retry-After.
	ShedsSeen      uint64  `json:"sheds_seen"`
	Retries        uint64  `json:"retries"`
	Hedges         uint64  `json:"hedges"`
	RetryAfterSeen bool    `json:"retry_after_seen"`
	ShedsMissingRA uint64  `json:"sheds_missing_retry_after"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	P999Ms         float64 `json:"p999_ms"`
	MaxMs          float64 `json:"max_ms"`
}

// retryAfterWatch is a RoundTripper that audits 429 responses for the
// Retry-After contract the server promises.
type retryAfterWatch struct {
	base    http.RoundTripper
	sheds   atomic.Uint64
	missing atomic.Uint64
}

func (w *retryAfterWatch) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := w.base.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		w.sheds.Add(1)
		if _, ok := nlwire.ParseRetryAfter(resp.Header.Get("Retry-After")); !ok {
			w.missing.Add(1)
		}
	}
	return resp, err
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nowlaterload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8753", "nowlaterd base URL")
	rate := fs.Float64("rate", 200, "arrival rate, requests per second")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	exactFrac := fs.Float64("exact-frac", 0.1, "fraction of out-of-grid queries (exact-solve cost)")
	deadline := fs.Duration("deadline", 500*time.Millisecond, "per-request deadline (propagated unless -naive)")
	hedge := fs.Duration("hedge", 0, "hedge delay for single decides (0 disables)")
	naive := fs.Bool("naive", false, "use the naive client: no retries, hedging or deadline propagation")
	seed := fs.Int64("seed", 1, "query-mix and jitter seed")
	outPath := fs.String("out", "", "write the JSON report here instead of stdout")
	version := fs.Bool("version", false, "print build info and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, versionString())
		return nil
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %v", *rate)
	}

	watch := &retryAfterWatch{base: http.DefaultTransport}
	client := nlclient.New(nlclient.Config{
		BaseURL:    *url,
		HTTPClient: &http.Client{Transport: watch},
		Hedge:      *hedge,
		Naive:      *naive,
		Seed:       *seed,
	})

	rng := rand.New(rand.NewSource(*seed))
	stop := time.After(*duration)
	arrival := time.NewTimer(nextInterval(rng, *rate))
	defer arrival.Stop()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		sent      atomic.Int64
		completed atomic.Int64
		failed    atomic.Int64
		degraded  atomic.Int64
	)
	start := time.Now()
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-arrival.C:
			arrival.Reset(nextInterval(rng, *rate))
			q := nextQuery(rng, *exactFrac)
			sent.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), *deadline)
				defer cancel()
				t0 := time.Now()
				d, err := client.Decide(ctx, q)
				el := time.Since(t0)
				if err != nil {
					failed.Add(1)
					return
				}
				completed.Add(1)
				if d.Degraded {
					degraded.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, el)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)

	st := client.Stats()
	rep := Report{
		OfferedPerSec:  *rate,
		AchievedPerSec: float64(completed.Load()) / wall.Seconds(),
		DurationS:      wall.Seconds(),
		Sent:           sent.Load(),
		Completed:      completed.Load(),
		Failed:         failed.Load(),
		Degraded:       degraded.Load(),
		ShedsSeen:      watch.sheds.Load(),
		Retries:        st.Retries,
		Hedges:         st.Hedges,
		RetryAfterSeen: watch.sheds.Load() > 0 && watch.missing.Load() == 0,
		ShedsMissingRA: watch.missing.Load(),
	}
	rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.MaxMs = percentiles(latencies)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = out.Write(data)
	return err
}

// nextInterval draws a Poisson inter-arrival gap (exponential, mean
// 1/rate, truncated at 10× to bound stalls). Evenly spaced arrivals never
// collide with sub-millisecond service times; Poisson arrivals burst the
// way real traffic does, which is exactly what an overload test needs.
func nextInterval(rng *rand.Rand, rate float64) time.Duration {
	gap := rng.ExpFloat64() / rate
	if max := 10 / rate; gap > max {
		gap = max
	}
	return time.Duration(gap * float64(time.Second))
}

// nextQuery draws from the reproducible mix: in-grid airplane-envelope
// queries, with an exactFrac slice pushed beyond the d0 axis so the server
// must run the exact optimizer.
func nextQuery(rng *rand.Rand, exactFrac float64) nlwire.Query {
	q := nlwire.Query{
		D0M:      60 + rng.Float64()*340,
		SpeedMPS: 2 + rng.Float64()*18,
		MdataMB:  1 + rng.Float64()*40,
		Rho:      rng.Float64() * 2e-3,
	}
	if rng.Float64() < exactFrac {
		q.D0M = 450 + rng.Float64()*4000 // out of grid: exact fallback
	}
	return q
}

// percentiles returns p50/p99/p99.9/max in milliseconds.
func percentiles(ds []time.Duration) (p50, p99, p999, max float64) {
	if len(ds) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(ds)-1))
		return float64(ds[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.99), at(0.999), float64(ds[len(ds)-1]) / float64(time.Millisecond)
}

// versionString mirrors nowlaterd's -version: the linker-stamped build
// identity.
func versionString() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "nowlaterload (no build info)"
	}
	version := info.Main.Version
	var rev string
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			rev = s.Value
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return fmt.Sprintf("nowlaterload %s (%s, %s)", version, rev, info.GoVersion)
	}
	return fmt.Sprintf("nowlaterload %s (%s)", version, info.GoVersion)
}
